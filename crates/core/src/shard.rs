//! Per-shard statistics accumulation for the sharded pipeline executor.
//!
//! Each worker drives a whole plan stage over one shard and records, per
//! step, how many samples it saw, kept, removed and edited, plus the CPU
//! time it spent in that step. After the stage joins, the executor merges
//! the per-shard accumulators into one dataset-level view per step:
//! counts add up, durations take the maximum across shards (the step's
//! contribution to the stage's critical path).

use std::time::Duration;

/// Counters one shard accumulates for one plan step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Samples that entered this step on this shard.
    pub samples_in: usize,
    /// Samples that survived this step on this shard.
    pub samples_out: usize,
    /// Samples removed by this step on this shard (filters/dedups).
    pub removed: usize,
    /// Samples whose text this step rewrote (mappers).
    pub changed: usize,
    /// CPU time this shard spent inside this step.
    pub duration: Duration,
}

impl ShardStats {
    /// Merge another shard's counters for the same step into this one.
    ///
    /// Counts are additive; the duration takes the per-shard maximum, which
    /// approximates the step's wall-clock contribution when shards run in
    /// parallel.
    pub fn merge(&mut self, other: &ShardStats) {
        self.samples_in += other.samples_in;
        self.samples_out += other.samples_out;
        self.removed += other.removed;
        self.changed += other.changed;
        self.duration = self.duration.max(other.duration);
    }

    /// Fold a sequence of per-shard accumulators into one.
    pub fn merged<'a>(all: impl IntoIterator<Item = &'a ShardStats>) -> ShardStats {
        let mut out = ShardStats::default();
        for s in all {
            out.merge(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counts_and_maxes_duration() {
        let a = ShardStats {
            samples_in: 10,
            samples_out: 8,
            removed: 2,
            changed: 3,
            duration: Duration::from_millis(5),
        };
        let b = ShardStats {
            samples_in: 7,
            samples_out: 7,
            removed: 0,
            changed: 1,
            duration: Duration::from_millis(9),
        };
        let m = ShardStats::merged([&a, &b]);
        assert_eq!(m.samples_in, 17);
        assert_eq!(m.samples_out, 15);
        assert_eq!(m.removed, 2);
        assert_eq!(m.changed, 4);
        assert_eq!(m.duration, Duration::from_millis(9));
    }

    #[test]
    fn merged_of_empty_is_default() {
        assert_eq!(ShardStats::merged([]), ShardStats::default());
    }
}
