//! Per-shard statistics accumulation and shard I/O abstractions for the
//! sharded pipeline executor.
//!
//! Each worker drives a whole plan stage over one shard and records, per
//! step, how many samples it saw, kept, removed and edited, plus the CPU
//! time it spent in that step. After the stage joins, the executor merges
//! the per-shard accumulators into one dataset-level view per step:
//! counts add up, durations take the maximum across shards (the step's
//! contribution to the stage's critical path).
//!
//! [`ShardSource`]/[`ShardSink`] abstract *where* shards live while a stage
//! streams them: [`MemShardStore`] keeps them in memory (the default), and
//! `dj-store`'s spool keeps them on disk so datasets larger than RAM flow
//! through stages with bounded peak memory. [`ResidencyGauge`] counts the
//! samples currently resident in the streaming machinery so tests can
//! assert the out-of-core memory ceiling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::dataset::Dataset;
use crate::error::{DjError, Result};

/// Counters one shard accumulates for one plan step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Samples that entered this step on this shard.
    pub samples_in: usize,
    /// Samples that survived this step on this shard.
    pub samples_out: usize,
    /// Samples removed by this step on this shard (filters/dedups).
    pub removed: usize,
    /// Samples whose text this step rewrote (mappers).
    pub changed: usize,
    /// CPU time this shard spent inside this step.
    pub duration: Duration,
    /// Decoded (decompressed) payload bytes this step's stage read to run
    /// this shard. Only columnar stages attribute bytes; row-format stages
    /// leave it zero. Every step of a fused stage reports the same shard
    /// decode — the stage decodes once for all of them.
    pub bytes_decoded: u64,
}

impl ShardStats {
    /// Merge another shard's counters for the same step into this one.
    ///
    /// Counts are additive; the duration takes the per-shard maximum, which
    /// approximates the step's wall-clock contribution when shards run in
    /// parallel.
    pub fn merge(&mut self, other: &ShardStats) {
        self.samples_in += other.samples_in;
        self.samples_out += other.samples_out;
        self.removed += other.removed;
        self.changed += other.changed;
        self.duration = self.duration.max(other.duration);
        self.bytes_decoded += other.bytes_decoded;
    }

    /// Fold a sequence of per-shard accumulators into one.
    pub fn merged<'a>(all: impl IntoIterator<Item = &'a ShardStats>) -> ShardStats {
        let mut out = ShardStats::default();
        for s in all {
            out.merge(s);
        }
        out
    }
}

/// Where a streaming stage reads its input shards from.
///
/// Implementations may hand out each index destructively (the in-memory
/// store moves the shard out of its slot), so a streaming pass loads every
/// index at most once. Disk-backed sources re-read from their files and can
/// therefore be streamed multiple times (the dedup barrier hashes in one
/// pass and applies the keep mask in a second).
pub trait ShardSource: Send + Sync {
    /// How many shards this source holds.
    fn shard_count(&self) -> usize;
    /// Load shard `idx`.
    fn load_shard(&self, idx: usize) -> Result<Dataset>;
}

/// Where a streaming stage writes its output shards to.
///
/// `idx` preserves shard order: reassembling a sink's shards in index order
/// must reproduce the order-preserving concatenation the merge step relies
/// on for byte-identical output.
pub trait ShardSink: Send + Sync {
    fn store_shard(&self, idx: usize, shard: Dataset) -> Result<()>;
}

/// In-memory shard store: the default (non-spilling) backing of the stage
/// driver. One mutex-guarded slot per shard; loads take the shard out.
#[derive(Debug, Default)]
pub struct MemShardStore {
    slots: Vec<Mutex<Option<Dataset>>>,
}

impl MemShardStore {
    /// A store pre-filled with input shards.
    pub fn from_shards(shards: Vec<Dataset>) -> MemShardStore {
        MemShardStore {
            slots: shards.into_iter().map(|s| Mutex::new(Some(s))).collect(),
        }
    }

    /// An empty store with `n` output slots.
    pub fn with_capacity(n: usize) -> MemShardStore {
        MemShardStore {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Drain the stored shards in index order. Errors if a slot was never
    /// filled (a worker died before storing its shard).
    pub fn into_shards(self) -> Result<Vec<Dataset>> {
        self.slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .ok_or_else(|| DjError::Storage(format!("shard {i} was never stored")))
            })
            .collect()
    }
}

impl ShardSource for MemShardStore {
    fn shard_count(&self) -> usize {
        self.slots.len()
    }
    fn load_shard(&self, idx: usize) -> Result<Dataset> {
        crate::sync::lock(&self.slots[idx])
            .take()
            .ok_or_else(|| DjError::Storage(format!("shard {idx} already loaded")))
    }
}

impl ShardSink for MemShardStore {
    fn store_shard(&self, idx: usize, shard: Dataset) -> Result<()> {
        *crate::sync::lock(&self.slots[idx]) = Some(shard);
        Ok(())
    }
}

/// Live-sample accounting for the streaming stage driver.
///
/// The loader acquires when it pulls a shard into memory; the worker
/// releases once the shard has been handed to the sink. The recorded peaks
/// are the engine's constant-memory evidence: with double-buffered prefetch
/// the peak must stay ≤ `num_workers × 2 × shard_size` samples.
#[derive(Debug, Default)]
pub struct ResidencyGauge {
    live_samples: AtomicUsize,
    peak_samples: AtomicUsize,
    live_bytes: AtomicUsize,
    peak_bytes: AtomicUsize,
}

impl ResidencyGauge {
    pub fn acquire(&self, samples: usize, bytes: usize) {
        let s = self.live_samples.fetch_add(samples, Ordering::Relaxed) + samples;
        self.peak_samples.fetch_max(s, Ordering::Relaxed);
        let b = self.live_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_bytes.fetch_max(b, Ordering::Relaxed);
    }

    pub fn release(&self, samples: usize, bytes: usize) {
        self.live_samples.fetch_sub(samples, Ordering::Relaxed);
        self.live_bytes.fetch_sub(bytes, Ordering::Relaxed);
    }

    pub fn live_samples(&self) -> usize {
        self.live_samples.load(Ordering::Relaxed)
    }

    pub fn peak_samples(&self) -> usize {
        self.peak_samples.load(Ordering::Relaxed)
    }

    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counts_and_maxes_duration() {
        let a = ShardStats {
            samples_in: 10,
            samples_out: 8,
            removed: 2,
            changed: 3,
            duration: Duration::from_millis(5),
            bytes_decoded: 100,
        };
        let b = ShardStats {
            samples_in: 7,
            samples_out: 7,
            removed: 0,
            changed: 1,
            duration: Duration::from_millis(9),
            bytes_decoded: 40,
        };
        let m = ShardStats::merged([&a, &b]);
        assert_eq!(m.samples_in, 17);
        assert_eq!(m.samples_out, 15);
        assert_eq!(m.removed, 2);
        assert_eq!(m.changed, 4);
        assert_eq!(m.duration, Duration::from_millis(9));
        assert_eq!(m.bytes_decoded, 140);
    }

    #[test]
    fn merged_of_empty_is_default() {
        assert_eq!(ShardStats::merged([]), ShardStats::default());
    }

    #[test]
    fn mem_store_roundtrips_in_order() {
        let shards = vec![
            Dataset::from_texts(["a", "b"]),
            Dataset::from_texts(["c"]),
            Dataset::new(),
        ];
        let store = MemShardStore::from_shards(shards.clone());
        assert_eq!(store.shard_count(), 3);
        let out = MemShardStore::with_capacity(3);
        for i in [2usize, 0, 1] {
            // Out-of-order store, in-order drain.
            out.store_shard(i, store.load_shard(i).unwrap()).unwrap();
        }
        assert_eq!(out.into_shards().unwrap(), shards);
    }

    #[test]
    fn mem_store_detects_double_load_and_missing_slot() {
        let store = MemShardStore::from_shards(vec![Dataset::new()]);
        store.load_shard(0).unwrap();
        assert!(store.load_shard(0).is_err());
        let empty = MemShardStore::with_capacity(2);
        assert!(empty.into_shards().is_err());
    }

    #[test]
    fn residency_gauge_tracks_peak() {
        let g = ResidencyGauge::default();
        g.acquire(10, 100);
        g.acquire(5, 50);
        g.release(10, 100);
        g.acquire(2, 20);
        assert_eq!(g.live_samples(), 7);
        assert_eq!(g.peak_samples(), 15);
        assert_eq!(g.peak_bytes(), 150);
    }
}
