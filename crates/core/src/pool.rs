//! Persistent worker pool: long-lived threads shared by every parallel
//! section in the process.
//!
//! The execution engine used to open a fresh [`std::thread::scope`] for
//! every parallel pass — stage streaming, hash passes, mask apply, banded
//! candidate generation — which meant ~17 spawn sites each paying thread
//! creation per pass. Under the service runtime several jobs share one
//! process, so those passes now register a **section** with the shared
//! [`WorkerPool`] instead: pool threads round-robin over all live sections,
//! stepping each one shard-sized unit of work at a time. That round-robin
//! is the fair shard-level (morsel) scheduler across concurrent jobs — no
//! job's section can starve another's, because a pool thread never takes
//! two steps from the same section while another eligible section waits.
//!
//! A section is a closure returning [`Step`]:
//!
//! * [`Step::Worked`] — one unit of work was done; step again.
//! * [`Step::Idle`] — nothing claimable right now (e.g. the prefetch queue
//!   is full and every remaining shard is being processed by someone
//!   else); back off briefly.
//! * [`Step::Done`] — the section is drained; nobody should step it again.
//!
//! The **calling thread participates** in its own section, so progress is
//! guaranteed even when every pool thread is busy in other jobs' sections —
//! a saturated pool degrades to the old single-caller behaviour instead of
//! deadlocking, and nested sections (a barrier inside a job inside the
//! runtime) need no special casing. `width` caps the number of concurrent
//! steppers (caller included), which is how streaming sections keep their
//! resident-shard ceiling identical to the old dedicated-thread layout.
//!
//! Worker panics inside a step are caught, the section is drained, and the
//! panic is re-raised on the calling thread — the same observable behaviour
//! as a panicking scoped thread.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use crate::error::panic_message;
use crate::sync;

/// What a section step accomplished; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// One unit of work was completed — step again immediately.
    Worked,
    /// Nothing claimable at this instant — retry after a short backoff.
    Idle,
    /// The section is exhausted — deregister it.
    Done,
}

type StepFn<'a> = dyn Fn() -> Step + Sync + 'a;

/// One registered parallel section.
struct Section {
    /// Lifetime-erased pointer to the caller's step closure. Only valid
    /// while the section is registered: [`SectionGuard`]'s drop removes the
    /// section from the registry and then waits for `active == 0`, so no
    /// pool thread can observe the pointer after `run_section` returns —
    /// even when the caller unwinds.
    step: *const StepFn<'static>,
    /// Max concurrent steppers (calling thread included).
    width: usize,
    /// Steppers currently inside the closure.
    active: AtomicUsize,
    /// No new steps may begin (drained, aborted, or caller unwinding).
    drained: AtomicBool,
    /// A pool-thread step panicked; re-raise on the caller.
    panicked: AtomicBool,
    /// The first panicking step's message, re-raised verbatim on the
    /// caller so the job error says *what* panicked.
    panic_msg: Mutex<Option<String>>,
}

// SAFETY: the raw closure pointer is only dereferenced between registration
// and deregistration, a window during which the caller's borrow is alive
// (see `Section::step`); the closure itself is `Sync`.
unsafe impl Send for Section {}
unsafe impl Sync for Section {}

impl Section {
    /// Try to reserve a stepper slot; never exceeds `width`.
    fn try_enter(&self) -> bool {
        let mut cur = self.active.load(Ordering::Relaxed);
        loop {
            if cur >= self.width {
                return false;
            }
            match self.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    fn exit(&self) {
        self.active.fetch_sub(1, Ordering::Release);
    }
}

struct Registry {
    sections: Vec<Arc<Section>>,
    /// Round-robin cursor over `sections` — the fairness pivot.
    cursor: usize,
    shutdown: bool,
}

/// A fixed set of long-lived worker threads serving [`Step`] sections.
///
/// One process-wide pool ([`WorkerPool::global`]) serves every job; tests
/// may build private pools. Dropping a non-global pool joins its threads.
pub struct WorkerPool {
    registry: Mutex<Registry>,
    /// Pool threads park here when no section is eligible.
    work_cv: Condvar,
    /// Callers park here while waiting for in-flight steps to retire.
    done_cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// OS threads ever spawned by any [`WorkerPool`] in this process. The
/// service-mode acceptance evidence: repeated runs through a warm pool
/// leave this counter flat where the scoped engine re-spawned per pass.
static SPAWNED_TOTAL: AtomicUsize = AtomicUsize::new(0);

/// How long an idle pool thread sleeps between eligibility polls. Section
/// registration notifies `work_cv`, so this is only a safety net against
/// missed wakeups; steps are shard-sized, so 1 ms is noise.
const IDLE_POLL: Duration = Duration::from_millis(1);

impl WorkerPool {
    /// A pool with `threads` long-lived worker threads. Zero is legal: all
    /// sections then run entirely on their calling threads.
    pub fn new(threads: usize) -> Arc<WorkerPool> {
        let pool = Arc::new(WorkerPool {
            registry: Mutex::new(Registry {
                sections: Vec::new(),
                cursor: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        });
        let mut handles = sync::lock(&pool.handles);
        for i in 0..threads {
            let p = Arc::clone(&pool);
            let spawned = std::thread::Builder::new()
                .name(format!("dj-pool-{i}"))
                .spawn(move || p.worker_loop());
            // A failed spawn degrades capacity, never correctness: every
            // section's caller is a stepper of last resort.
            if let Ok(h) = spawned {
                SPAWNED_TOTAL.fetch_add(1, Ordering::Relaxed);
                handles.push(h);
            }
        }
        drop(handles);
        pool
    }

    /// The process-wide shared pool, created on first use with
    /// `available_parallelism - 1` threads (min 3, so the single-core test
    /// container still overlaps IO with compute) — the calling thread of
    /// every section is the extra stepper.
    pub fn global() -> &'static Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            WorkerPool::new(n.saturating_sub(1).max(3))
        })
    }

    /// Total OS threads ever spawned by pools in this process — flat across
    /// repeated sections once the global pool is warm.
    pub fn spawned_total() -> usize {
        SPAWNED_TOTAL.load(Ordering::Relaxed)
    }

    /// Run one parallel section to completion.
    ///
    /// At most `width` steppers (this calling thread plus pool threads) are
    /// inside `step` concurrently. Returns once some stepper has returned
    /// [`Step::Done`] and every in-flight step has retired. Panics if a
    /// pool-thread step panicked (after the section is safely retired),
    /// mirroring scoped-thread propagation.
    pub fn run_section(&self, width: usize, step: &StepFn<'_>) {
        let width = width.max(1);
        if width == 1 {
            // Degenerate section: no sharing possible, skip registration.
            loop {
                match step() {
                    Step::Done => return,
                    Step::Worked => {}
                    Step::Idle => std::thread::yield_now(),
                }
            }
        }
        // SAFETY: erasing the borrow lifetime only; `SectionGuard` below
        // guarantees the pointer is unreachable once the borrow ends.
        let erased: *const StepFn<'static> =
            unsafe { std::mem::transmute::<*const StepFn<'_>, *const StepFn<'static>>(step) };
        let section = Arc::new(Section {
            step: erased,
            width,
            active: AtomicUsize::new(0),
            drained: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            panic_msg: Mutex::new(None),
        });
        {
            let mut reg = sync::lock(&self.registry);
            reg.sections.push(Arc::clone(&section));
        }
        self.work_cv.notify_all();
        let guard = SectionGuard {
            pool: self,
            section: &section,
        };
        // The caller is a stepper too: guaranteed progress under a
        // saturated or zero-thread pool.
        while !section.drained.load(Ordering::Acquire) {
            if !section.try_enter() {
                std::thread::yield_now();
                continue;
            }
            let outcome = {
                // Release the stepper slot even if the caller's own step
                // unwinds — otherwise the guard below waits forever for
                // `active == 0`.
                struct Exit<'a>(&'a Section);
                impl Drop for Exit<'_> {
                    fn drop(&mut self) {
                        self.0.exit();
                    }
                }
                let _exit = Exit(&section);
                if section.drained.load(Ordering::Acquire) {
                    Step::Done
                } else {
                    step()
                }
            };
            match outcome {
                Step::Worked => {}
                Step::Idle => std::thread::sleep(Duration::from_micros(50)),
                Step::Done => {
                    section.drained.store(true, Ordering::Release);
                    break;
                }
            }
        }
        drop(guard); // deregister + wait for in-flight pool steps
        if section.panicked.load(Ordering::Acquire) {
            let msg = sync::lock(&section.panic_msg)
                .take()
                .unwrap_or_else(|| "no payload captured".into());
            panic!("worker pool section panicked: {msg}");
        }
    }

    /// Claim indices `0..n` across up to `width` steppers, collecting each
    /// index's result in order. The pooled replacement for the
    /// "spawn workers over an atomic index" scoped pattern.
    pub fn run_indexed<R, F>(&self, width: usize, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        self.run_section(width.min(n).max(1), &|| {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                return Step::Done;
            }
            let r = f(i);
            *sync::lock(&slots[i]) = Some(r);
            Step::Worked
        });
        slots
            .into_iter()
            .map(|m| {
                // Invariant, not error handling: the section only retires
                // after every claimed index stored its result, and a
                // panicked step re-raised above before reaching here.
                #[allow(clippy::expect_used)]
                sync::lock(&m)
                    .take()
                    .expect("every claimed index completes before the section retires")
            })
            .collect()
    }

    fn worker_loop(&self) {
        let mut reg = sync::lock(&self.registry);
        loop {
            if reg.shutdown {
                return;
            }
            let picked = Self::pick(&mut reg);
            let Some(section) = picked else {
                reg = sync::wait_timeout(&self.work_cv, reg, IDLE_POLL);
                continue;
            };
            drop(reg);
            // SAFETY: see `Section::step` — the caller cannot invalidate
            // the closure while `active > 0`.
            let step = unsafe { &*section.step };
            let outcome = catch_unwind(AssertUnwindSafe(step));
            reg = sync::lock(&self.registry);
            match &outcome {
                Ok(Step::Worked) => {}
                Ok(Step::Idle) => {}
                Ok(Step::Done) => section.drained.store(true, Ordering::Release),
                Err(payload) => {
                    let mut msg = sync::lock(&section.panic_msg);
                    if msg.is_none() {
                        *msg = Some(panic_message(payload.as_ref()));
                    }
                    drop(msg);
                    section.panicked.store(true, Ordering::Release);
                    section.drained.store(true, Ordering::Release);
                }
            }
            section.exit();
            // The caller may be waiting on active == 0 under the registry
            // lock we hold — wake it.
            self.done_cv.notify_all();
            if matches!(outcome, Ok(Step::Idle)) {
                // The section had nothing claimable; don't spin on it.
                reg = sync::wait_timeout(&self.work_cv, reg, IDLE_POLL);
            }
        }
    }

    /// Round-robin pick of the next eligible section, reserving a stepper
    /// slot in it. Called under the registry lock.
    fn pick(reg: &mut Registry) -> Option<Arc<Section>> {
        let n = reg.sections.len();
        if n == 0 {
            return None;
        }
        let start = reg.cursor % n;
        for k in 0..n {
            let idx = (start + k) % n;
            let section = &reg.sections[idx];
            if !section.drained.load(Ordering::Acquire) && section.try_enter() {
                reg.cursor = (idx + 1) % n;
                return Some(Arc::clone(section));
            }
        }
        None
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut reg = sync::lock(&self.registry);
            reg.shutdown = true;
        }
        self.work_cv.notify_all();
        for h in sync::lock(&self.handles).drain(..) {
            let _ = h.join();
        }
    }
}

/// Retires a section on drop: marks it drained, removes it from the
/// registry (no new picks), then waits for every in-flight step to exit —
/// after which the erased closure pointer is provably unreachable. Runs on
/// the normal path *and* when the caller unwinds out of its own step.
struct SectionGuard<'a> {
    pool: &'a WorkerPool,
    section: &'a Arc<Section>,
}

impl Drop for SectionGuard<'_> {
    fn drop(&mut self) {
        self.section.drained.store(true, Ordering::Release);
        let mut reg = sync::lock(&self.pool.registry);
        reg.sections.retain(|s| !Arc::ptr_eq(s, self.section));
        while self.section.active.load(Ordering::Acquire) > 0 {
            reg = sync::wait_timeout(&self.pool.done_cv, reg, IDLE_POLL);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_collects_in_order() {
        let pool = WorkerPool::new(3);
        let out = pool.run_indexed(4, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_indexed_zero_items_and_width_one() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.run_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run_indexed(1, 3, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn zero_thread_pool_still_completes() {
        let pool = WorkerPool::new(0);
        let sum: usize = pool.run_indexed(8, 50, |i| i).iter().sum();
        assert_eq!(sum, (0..50).sum());
    }

    #[test]
    fn sections_share_pool_threads_fairly() {
        // Two sections run back-to-back from two caller threads; both must
        // complete (round-robin never starves either).
        let pool = WorkerPool::new(2);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let p = &pool;
                s.spawn(move || {
                    let out = p.run_indexed(3, 64, |i| i + 1);
                    assert_eq!(out.len(), 64);
                });
            }
        });
    }

    #[test]
    fn width_caps_concurrent_steppers() {
        let pool = WorkerPool::new(8);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.run_indexed(2, 200, |_| {
            let l = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(l, Ordering::SeqCst);
            std::thread::yield_now();
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "width budget exceeded");
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let hit = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(3, 10, |i| {
                if i == 4 {
                    panic!("boom in step 4");
                }
                i
            });
        }));
        // The original payload survives the pool boundary: whether a pool
        // thread (re-raised with context) or the caller itself hit the
        // panic, the message names the culprit.
        let payload = hit.unwrap_err();
        let msg = panic_message(payload.as_ref());
        assert!(msg.contains("boom in step 4"), "payload lost: {msg}");
        // The pool survives a panicked section.
        assert_eq!(pool.run_indexed(3, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn global_pool_spawns_once() {
        let before = {
            WorkerPool::global().run_indexed(2, 4, |i| i);
            WorkerPool::spawned_total()
        };
        for _ in 0..5 {
            WorkerPool::global().run_indexed(4, 16, |i| i);
        }
        assert_eq!(
            WorkerPool::spawned_total(),
            before,
            "warm global pool must not re-spawn threads"
        );
    }
}
