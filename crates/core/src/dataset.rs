//! In-memory dataset: the unified intermediate representation of §3.1.
//!
//! The interface deliberately mirrors the handful of Huggingface-`datasets`
//! entry points Data-Juicer relies on — `map`, `filter`, column addition and
//! whole-dataset passes — so the executor, cache layer and OP pool interact
//! with datasets exactly the way the paper describes.

use crate::error::Result;
use crate::sample::Sample;
use crate::value::Value;

/// An ordered collection of [`Sample`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    samples: Vec<Sample>,
}

impl Dataset {
    pub fn new() -> Dataset {
        Dataset::default()
    }

    pub fn from_samples(samples: Vec<Sample>) -> Dataset {
        Dataset { samples }
    }

    /// Build a dataset of plain-text samples.
    pub fn from_texts<I, S>(texts: I) -> Dataset
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Dataset {
            samples: texts.into_iter().map(|t| Sample::from_text(t)).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    pub fn samples_mut(&mut self) -> &mut [Sample] {
        &mut self.samples
    }

    pub fn into_samples(self) -> Vec<Sample> {
        self.samples
    }

    pub fn get(&self, idx: usize) -> Option<&Sample> {
        self.samples.get(idx)
    }

    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// Append all samples of `other` (dataset mixing / merging).
    pub fn extend(&mut self, other: Dataset) {
        self.samples.extend(other.samples);
    }

    /// `Dataset.map`: transform every sample in place, propagating errors.
    pub fn map<F>(&mut self, mut f: F) -> Result<()>
    where
        F: FnMut(&mut Sample) -> Result<()>,
    {
        for s in &mut self.samples {
            f(s)?;
        }
        Ok(())
    }

    /// `Dataset.filter`: retain samples for which the predicate returns true.
    pub fn filter<F>(&mut self, mut f: F) -> Result<usize>
    where
        F: FnMut(&Sample) -> Result<bool>,
    {
        let mut keep = Vec::with_capacity(self.samples.len());
        for s in &self.samples {
            keep.push(f(s)?);
        }
        let before = self.samples.len();
        let mut it = keep.into_iter();
        // `keep` has exactly one entry per sample; an exhausted iterator
        // would be a bug, and dropping the sample is the safe default.
        self.samples.retain(|_| it.next().unwrap_or(false));
        Ok(before - self.samples.len())
    }

    /// Retain samples according to a precomputed boolean mask.
    ///
    /// Deduplicators produce such masks at dataset level; panics if the mask
    /// length mismatches (an executor invariant, not user input).
    pub fn retain_mask(&mut self, mask: &[bool]) {
        assert_eq!(
            mask.len(),
            self.samples.len(),
            "mask length must equal dataset length"
        );
        let mut it = mask.iter();
        // Length equality was asserted above.
        self.samples.retain(|_| it.next().copied().unwrap_or(false));
    }

    /// Select a subset by indices (sampler support). Unknown indices skipped.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            samples: indices
                .iter()
                .filter_map(|&i| self.samples.get(i).cloned())
                .collect(),
        }
    }

    /// Split off the first `n` samples into a new dataset (sharding support).
    pub fn take(&self, n: usize) -> Dataset {
        Dataset {
            samples: self.samples.iter().take(n).cloned().collect(),
        }
    }

    /// Split into `n` contiguous shards of near-equal size, preserving
    /// sample order: `Dataset::from_shards(d.into_shards(n)) == d` for any
    /// `n >= 1`. This is the unit of work of the sharded pipeline executor
    /// (each worker drives a whole plan stage over one shard).
    pub fn into_shards(self, n: usize) -> Vec<Dataset> {
        self.partition(n)
    }

    /// Reassemble shards produced by [`Dataset::into_shards`], preserving
    /// shard order (and therefore the original sample order).
    pub fn from_shards(shards: Vec<Dataset>) -> Dataset {
        Dataset::concat(shards)
    }

    /// Partition into `n` contiguous shards of near-equal size.
    ///
    /// Used by the distributed backends for automatic data partitioning.
    pub fn partition(self, n: usize) -> Vec<Dataset> {
        assert!(n > 0, "partition count must be positive");
        let len = self.samples.len();
        let base = len / n;
        let rem = len % n;
        let mut shards = Vec::with_capacity(n);
        let mut it = self.samples.into_iter();
        for i in 0..n {
            let size = base + usize::from(i < rem);
            shards.push(Dataset {
                samples: it.by_ref().take(size).collect(),
            });
        }
        shards
    }

    /// Merge shards back into one dataset, preserving shard order.
    pub fn concat(shards: Vec<Dataset>) -> Dataset {
        let total = shards.iter().map(Dataset::len).sum();
        let mut samples = Vec::with_capacity(total);
        for s in shards {
            samples.extend(s.samples);
        }
        Dataset { samples }
    }

    /// Add (or overwrite) a column: sets `path` on every sample.
    pub fn add_column<F>(&mut self, path: &str, mut f: F) -> Result<()>
    where
        F: FnMut(&Sample) -> Value,
    {
        for s in &mut self.samples {
            let v = f(s);
            s.value_mut().set_path(path, v)?;
        }
        Ok(())
    }

    /// Collect the values of a numeric stats column that is present.
    pub fn stat_column(&self, key: &str) -> Vec<f64> {
        self.samples.iter().filter_map(|s| s.stat(key)).collect()
    }

    /// Total text bytes across all samples (throughput reporting).
    pub fn text_bytes(&self) -> usize {
        self.samples.iter().map(|s| s.text().len()).sum()
    }

    /// Approximate heap footprint of the whole dataset in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.samples.iter().map(Sample::approx_bytes).sum()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }
}

impl IntoIterator for Dataset {
    type Item = Sample;
    type IntoIter = std::vec::IntoIter<Sample>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.into_iter()
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

impl FromIterator<Sample> for Dataset {
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        Dataset {
            samples: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::from_texts(["alpha", "beta", "gamma", "delta", "epsilon"])
    }

    #[test]
    fn map_transforms_every_sample() {
        let mut d = ds();
        d.map(|s| {
            let up = s.text().to_uppercase();
            s.set_text(up);
            Ok(())
        })
        .unwrap();
        assert_eq!(d.get(0).unwrap().text(), "ALPHA");
        assert_eq!(d.get(4).unwrap().text(), "EPSILON");
    }

    #[test]
    fn filter_returns_removed_count() {
        let mut d = ds();
        let removed = d.filter(|s| Ok(s.text().len() > 4)).unwrap();
        assert_eq!(removed, 1); // only "beta" is <= 4 chars
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn retain_mask_keeps_marked() {
        let mut d = ds();
        d.retain_mask(&[true, false, true, false, true]);
        let texts: Vec<_> = d.iter().map(|s| s.text().to_string()).collect();
        assert_eq!(texts, vec!["alpha", "gamma", "epsilon"]);
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn retain_mask_panics_on_length_mismatch() {
        let mut d = ds();
        d.retain_mask(&[true]);
    }

    #[test]
    fn partition_concat_roundtrip() {
        let d = ds();
        let original = d.clone();
        let shards = d.partition(3);
        assert_eq!(
            shards.iter().map(Dataset::len).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
        let merged = Dataset::concat(shards);
        assert_eq!(merged, original);
    }

    #[test]
    fn partition_with_more_shards_than_samples() {
        let d = Dataset::from_texts(["a", "b"]);
        let shards = d.partition(5);
        assert_eq!(shards.len(), 5);
        assert_eq!(shards.iter().map(Dataset::len).sum::<usize>(), 2);
        assert!(shards[4].is_empty());
    }

    #[test]
    fn add_column_and_stat_column() {
        let mut d = ds();
        d.add_column("stats.len", |s| Value::Float(s.text().len() as f64))
            .unwrap();
        let col = d.stat_column("len");
        assert_eq!(col, vec![5.0, 4.0, 5.0, 5.0, 7.0]);
    }

    #[test]
    fn select_skips_out_of_range() {
        let d = ds();
        let sub = d.select(&[4, 0, 99]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.get(0).unwrap().text(), "epsilon");
    }

    #[test]
    fn extend_merges_datasets() {
        let mut d = Dataset::from_texts(["a"]);
        d.extend(Dataset::from_texts(["b", "c"]));
        assert_eq!(d.len(), 3);
    }
}
