//! Context management: shared intermediate variables across operators.
//!
//! Many OPs derive the same intermediate views from a sample's text —
//! segmented words, split lines, sentences (paper §6, "Optimized
//! Computation"). A [`SampleContext`] memoizes those views for the text they
//! were computed from, so fused operators reuse them instead of re-deriving
//! them. The context is cleared after each (fused) OP to keep memory flat.

/// Bit flags describing which derived views an operator consumes.
///
/// Two Filters are *fusible* when their context needs intersect (they share
/// a computation sub-procedure, paper §6 / Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContextNeeds(pub u8);

impl ContextNeeds {
    pub const NONE: ContextNeeds = ContextNeeds(0);
    pub const WORDS: ContextNeeds = ContextNeeds(1);
    pub const LINES: ContextNeeds = ContextNeeds(1 << 1);
    pub const SENTENCES: ContextNeeds = ContextNeeds(1 << 2);
    pub const CHARS: ContextNeeds = ContextNeeds(1 << 3);

    /// Union of two need sets.
    pub const fn union(self, other: ContextNeeds) -> ContextNeeds {
        ContextNeeds(self.0 | other.0)
    }

    /// True when the two need sets share at least one view.
    pub const fn intersects(self, other: ContextNeeds) -> bool {
        self.0 & other.0 != 0
    }

    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// Memoized per-sample derived views, keyed by a version counter that the
/// executor bumps whenever a Mapper rewrites the text.
#[derive(Debug, Default)]
pub struct SampleContext {
    version: u64,
    words: Option<(u64, Vec<String>)>,
    lines: Option<(u64, Vec<String>)>,
    sentences: Option<(u64, Vec<String>)>,
    /// Count of (re)computations, exposed for the context-reuse ablation.
    pub compute_count: u64,
}

impl SampleContext {
    pub fn new() -> SampleContext {
        SampleContext::default()
    }

    /// Invalidate all cached views (text was rewritten by a Mapper).
    pub fn invalidate(&mut self) {
        self.version += 1;
    }

    /// Drop cached views entirely (end of a fused OP; paper: "contexts of
    /// each sample will be cleaned up after each fused OP").
    pub fn clear(&mut self) {
        self.words = None;
        self.lines = None;
        self.sentences = None;
    }

    /// Segmented words of `text`, computed at most once per text version.
    ///
    /// Word segmentation is Unicode-alphanumeric runs; CJK characters are
    /// treated as single-character words, which matches how the paper's
    /// Chinese OPs count tokens without a whitespace convention.
    pub fn words(&mut self, text: &str) -> &[String] {
        if self.words.as_ref().map(|(v, _)| *v) != Some(self.version) {
            self.compute_count += 1;
            self.words = Some((self.version, segment_words(text)));
        }
        match &self.words {
            Some((_, w)) => w,
            None => &[], // unreachable: just set above
        }
    }

    /// Lines of `text` (split on `\n`), computed at most once per version.
    pub fn lines(&mut self, text: &str) -> &[String] {
        if self.lines.as_ref().map(|(v, _)| *v) != Some(self.version) {
            self.compute_count += 1;
            self.lines = Some((self.version, text.split('\n').map(str::to_string).collect()));
        }
        match &self.lines {
            Some((_, l)) => l,
            None => &[], // unreachable: just set above
        }
    }

    /// Sentences of `text` (split on `.!?` and CJK equivalents), memoized.
    pub fn sentences(&mut self, text: &str) -> &[String] {
        if self.sentences.as_ref().map(|(v, _)| *v) != Some(self.version) {
            self.compute_count += 1;
            self.sentences = Some((self.version, segment_sentences(text)));
        }
        match &self.sentences {
            Some((_, s)) => s,
            None => &[], // unreachable: just set above
        }
    }
}

/// Unicode-aware word segmentation shared by OPs and the analyzer.
pub fn segment_words(text: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if is_cjk(c) {
            if !cur.is_empty() {
                words.push(std::mem::take(&mut cur));
            }
            words.push(c.to_string());
        } else if c.is_alphanumeric() || c == '_' || c == '\'' {
            cur.push(c);
        } else if !cur.is_empty() {
            words.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        words.push(cur);
    }
    words
}

/// Sentence segmentation on terminal punctuation (ASCII + CJK).
pub fn segment_sentences(text: &str) -> Vec<String> {
    let mut sents = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        cur.push(c);
        if matches!(c, '.' | '!' | '?' | '。' | '！' | '？') {
            let t = cur.trim();
            if !t.is_empty() {
                sents.push(t.to_string());
            }
            cur.clear();
        }
    }
    let t = cur.trim();
    if !t.is_empty() {
        sents.push(t.to_string());
    }
    sents
}

/// True for CJK unified ideographs and common fullwidth ranges.
pub fn is_cjk(c: char) -> bool {
    matches!(c as u32,
        0x4E00..=0x9FFF      // CJK Unified Ideographs
        | 0x3400..=0x4DBF    // Extension A
        | 0x3000..=0x303F    // CJK punctuation
        | 0xFF00..=0xFFEF    // fullwidth forms
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_memoized_until_invalidated() {
        let mut ctx = SampleContext::new();
        let text = "one two three";
        assert_eq!(ctx.words(text).len(), 3);
        assert_eq!(ctx.words(text).len(), 3);
        assert_eq!(ctx.compute_count, 1);
        ctx.invalidate();
        assert_eq!(ctx.words("four five").len(), 2);
        assert_eq!(ctx.compute_count, 2);
    }

    #[test]
    fn segment_words_handles_cjk_and_contractions() {
        assert_eq!(segment_words("don't stop"), vec!["don't", "stop"]);
        assert_eq!(segment_words("数据处理"), vec!["数", "据", "处", "理"]);
        assert_eq!(
            segment_words("mix 数据 end"),
            vec!["mix", "数", "据", "end"]
        );
        assert_eq!(segment_words(""), Vec::<String>::new());
        assert_eq!(segment_words("  ,,  "), Vec::<String>::new());
    }

    #[test]
    fn segment_sentences_splits_on_terminals() {
        let s = segment_sentences("One. Two! Three? Four");
        assert_eq!(s, vec!["One.", "Two!", "Three?", "Four"]);
        let zh = segment_sentences("第一句。第二句！");
        assert_eq!(zh, vec!["第一句。", "第二句！"]);
    }

    #[test]
    fn needs_set_operations() {
        let wl = ContextNeeds::WORDS.union(ContextNeeds::LINES);
        assert!(wl.intersects(ContextNeeds::WORDS));
        assert!(wl.intersects(ContextNeeds::LINES));
        assert!(!wl.intersects(ContextNeeds::SENTENCES));
        assert!(!ContextNeeds::NONE.intersects(wl));
        assert!(ContextNeeds::NONE.is_empty());
    }

    #[test]
    fn clear_forces_recompute() {
        let mut ctx = SampleContext::new();
        ctx.words("a b");
        ctx.clear();
        ctx.words("a b");
        assert_eq!(ctx.compute_count, 2);
    }
}
