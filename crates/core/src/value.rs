//! Dynamically-typed values with nested-path access.
//!
//! Data-Juicer unifies heterogeneous data sources into a structured format of
//! columns with *nested access support* (paper §3.1). A [`Value`] is the
//! building block: samples are `Value::Map`s whose fields are addressed by
//! dotted paths such as `"text.abstract"` or `"stats.word_count"`.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{DjError, Result};

/// A dynamically typed value tree (the intermediate representation of §3.1).
///
/// `Map` uses a `BTreeMap` so that iteration order — and therefore
/// serialization, hashing and cache fingerprints — is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    List(Vec<Value>),
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Empty map value, the starting point for building samples.
    pub fn map() -> Value {
        Value::Map(BTreeMap::new())
    }

    /// Kind name used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Map(_) => "map",
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric coercion: ints read as floats, matching how recipe parameters
    /// written as `3` are consumed by float thresholds.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_map_mut(&mut self) -> Option<&mut BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Look up a nested value by dotted path, e.g. `"meta.language"`.
    ///
    /// Returns `None` when any segment is missing or a non-map is traversed.
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = cur.as_map()?.get(seg)?;
        }
        Some(cur)
    }

    /// Mutable nested lookup by dotted path.
    pub fn get_path_mut(&mut self, path: &str) -> Option<&mut Value> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = cur.as_map_mut()?.get_mut(seg)?;
        }
        Some(cur)
    }

    /// Insert a value at a dotted path, creating intermediate maps as needed.
    ///
    /// Fails if an intermediate segment exists but is not a map.
    pub fn set_path(&mut self, path: &str, value: Value) -> Result<()> {
        let mut cur = self;
        let mut segs = path.split('.').peekable();
        while let Some(seg) = segs.next() {
            let is_last = segs.peek().is_none();
            let map = cur.as_map_mut().ok_or_else(|| {
                DjError::Field(format!("`{path}`: segment before `{seg}` is not a map"))
            })?;
            if is_last {
                map.insert(seg.to_string(), value);
                return Ok(());
            }
            cur = map.entry(seg.to_string()).or_insert_with(Value::map);
        }
        Err(DjError::Field(format!("empty path `{path}`")))
    }

    /// Remove the value at a dotted path; returns the removed value if present.
    pub fn remove_path(&mut self, path: &str) -> Option<Value> {
        match path.rsplit_once('.') {
            Some((parent, leaf)) => self.get_path_mut(parent)?.as_map_mut()?.remove(leaf),
            None => self.as_map_mut()?.remove(path),
        }
    }

    /// Approximate heap footprint in bytes. Used by the end-to-end benchmark
    /// harness (Fig. 8) for memory accounting.
    pub fn approx_bytes(&self) -> usize {
        const NODE: usize = std::mem::size_of::<Value>();
        match self {
            Value::Null | Value::Bool(_) | Value::Int(_) | Value::Float(_) => NODE,
            Value::Str(s) => NODE + s.capacity(),
            Value::List(l) => NODE + l.iter().map(Value::approx_bytes).sum::<usize>(),
            Value::Map(m) => {
                NODE + m
                    .iter()
                    .map(|(k, v)| k.capacity() + 24 + v.approx_bytes())
                    .sum::<usize>()
            }
        }
    }

    /// Stable structural equality helper usable as a dedup key.
    ///
    /// Floats are compared by bit pattern so the function is total.
    pub fn structural_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.structural_eq(y))
            }
            (Value::Map(a), Value::Map(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((ka, va), (kb, vb))| ka == kb && va.structural_eq(vb))
            }
            (a, b) => a == b,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    /// JSON-compatible rendering (used by the JSONL exporter).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no Inf/NaN literal; emit null like Python's json.
                    write!(f, "null")
                }
            }
            Value::Str(s) => write_json_string(f, s),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> Value {
        let mut v = Value::map();
        v.set_path("text", Value::from("hello")).unwrap();
        v.set_path("meta.language", Value::from("en")).unwrap();
        v.set_path("stats.word_count", Value::from(2i64)).unwrap();
        v
    }

    #[test]
    fn nested_get_set_roundtrip() {
        let v = sample_tree();
        assert_eq!(v.get_path("text").unwrap().as_str(), Some("hello"));
        assert_eq!(v.get_path("meta.language").unwrap().as_str(), Some("en"));
        assert_eq!(v.get_path("stats.word_count").unwrap().as_int(), Some(2));
        assert!(v.get_path("meta.missing").is_none());
        assert!(v.get_path("text.sub").is_none());
    }

    #[test]
    fn set_path_creates_intermediate_maps() {
        let mut v = Value::map();
        v.set_path("a.b.c.d", Value::from(1i64)).unwrap();
        assert_eq!(v.get_path("a.b.c.d").unwrap().as_int(), Some(1));
    }

    #[test]
    fn set_path_fails_through_non_map() {
        let mut v = sample_tree();
        let err = v.set_path("text.sub", Value::Null).unwrap_err();
        assert!(err.to_string().contains("not a map"));
    }

    #[test]
    fn remove_path_removes_leaf() {
        let mut v = sample_tree();
        let removed = v.remove_path("meta.language").unwrap();
        assert_eq!(removed.as_str(), Some("en"));
        assert!(v.get_path("meta.language").is_none());
        assert!(v.get_path("meta").is_some());
    }

    #[test]
    fn float_coercion_from_int() {
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(0.5).as_float(), Some(0.5));
        assert_eq!(Value::Str("x".into()).as_float(), None);
    }

    #[test]
    fn display_is_json_compatible() {
        let v = sample_tree();
        let s = v.to_string();
        assert_eq!(
            s,
            r#"{"meta":{"language":"en"},"stats":{"word_count":2},"text":"hello"}"#
        );
    }

    #[test]
    fn display_escapes_control_chars() {
        let v = Value::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let small = Value::from("ab");
        let big = Value::from("a".repeat(1000));
        assert!(big.approx_bytes() > small.approx_bytes() + 900);
    }

    #[test]
    fn structural_eq_total_on_floats() {
        assert!(Value::Float(f64::NAN).structural_eq(&Value::Float(f64::NAN)));
        assert!(!Value::Float(0.0).structural_eq(&Value::Float(-0.0)));
    }
}
