//! # dj-core — unified data representation & operator abstractions
//!
//! The foundation crate of *data-juicer-rs*, a Rust reproduction of
//! **Data-Juicer: A One-Stop Data Processing System for Large Language
//! Models** (SIGMOD 2024).
//!
//! This crate provides:
//!
//! * [`Value`] — a dynamically-typed value tree with nested dotted-path
//!   access (`"text.abstract"`, `"stats.word_count"`), the intermediate
//!   representation of paper §3.1;
//! * [`Sample`] — one record, conceptually split into `"text"`, `"meta"`
//!   and `"stats"` parts;
//! * [`Dataset`] — an ordered sample collection with `map`/`filter`/
//!   partition/concat interfaces mirroring the Huggingface-datasets entry
//!   points the original system builds on;
//! * [`SampleContext`] — memoized derived views (words, lines, sentences)
//!   that power the context-management optimization of §6;
//! * the operator traits of Listing 1 ([`Formatter`], [`Mapper`],
//!   [`Filter`], [`Deduplicator`]) together with the type-erased [`Op`]
//!   and the [`OpRegistry`] extension point;
//! * [`faults`] — the deterministic fault-injection plan chaos tests
//!   replay (`DJ_FAULTS`), with named sites threaded through the
//!   storage, IO and execution crates.

// Panic-on-error is banned in library code: every unwrap/expect outside
// tests is either restructured away or carries an explicit `#[allow]`
// with its infallibility argument.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod context;
pub mod dataset;
pub mod error;
pub mod faults;
pub mod json;
pub mod op;
pub mod pool;
pub mod sample;
pub mod shard;
pub mod sync;
pub mod value;

pub use context::{is_cjk, segment_sentences, segment_words, ContextNeeds, SampleContext};
pub use dataset::Dataset;
pub use error::{panic_message, DjError, OnError, Result};
pub use faults::{ErrKind, FaultGuard, FaultPlan, FaultSpec};
pub use json::parse_json;
pub use op::{
    params, Deduplicator, FieldSet, Filter, Formatter, Mapper, Op, OpCost, OpFactory, OpKind,
    OpParams, OpRegistry,
};
pub use pool::{Step, WorkerPool};
pub use sample::{Sample, META_KEY, STATS_KEY, TEXT_KEY};
pub use shard::{MemShardStore, ResidencyGauge, ShardSink, ShardSource, ShardStats};
pub use value::Value;
