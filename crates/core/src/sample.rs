//! Text samples: the row type of the unified intermediate representation.
//!
//! Each sample is conceptually organized in three primary parts (paper §3.1):
//! `"text"` (the raw textual data), `"meta"` (metadata such as source, date,
//! language tags) and `"stats"` (statistics generated and consumed by OPs and
//! tools). OPs may also be pointed at any other nested field.

use crate::error::{DjError, Result};
use crate::value::Value;

/// Default field processed by every OP unless reconfigured (paper §3.3).
pub const TEXT_KEY: &str = "text";
/// Conventional prefix for metadata fields.
pub const META_KEY: &str = "meta";
/// Conventional prefix for per-sample statistics written by Filters.
pub const STATS_KEY: &str = "stats";

/// One document / record flowing through a processing pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    root: Value,
}

impl Default for Sample {
    fn default() -> Self {
        Sample { root: Value::map() }
    }
}

impl Sample {
    /// Create an empty sample (all three parts absent until written).
    pub fn new() -> Sample {
        Sample::default()
    }

    /// Create a sample holding `text` in the default text field.
    pub fn from_text(text: impl Into<String>) -> Sample {
        let mut s = Sample::new();
        s.set_text(text);
        s
    }

    /// Wrap an existing value tree. Fails unless the root is a map.
    pub fn from_value(root: Value) -> Result<Sample> {
        if root.as_map().is_none() {
            return Err(DjError::Field(format!(
                "sample root must be a map, got {}",
                root.kind()
            )));
        }
        Ok(Sample { root })
    }

    /// Borrow the underlying value tree.
    pub fn value(&self) -> &Value {
        &self.root
    }

    /// Mutably borrow the underlying value tree.
    pub fn value_mut(&mut self) -> &mut Value {
        &mut self.root
    }

    /// Consume the sample, yielding the value tree.
    pub fn into_value(self) -> Value {
        self.root
    }

    /// The default text payload ("" when the field is absent or non-string).
    pub fn text(&self) -> &str {
        self.text_at(TEXT_KEY)
    }

    /// Text payload at an arbitrary dotted field (e.g. `"text.abstract"`).
    pub fn text_at(&self, field: &str) -> &str {
        self.root
            .get_path(field)
            .and_then(Value::as_str)
            .unwrap_or("")
    }

    /// Overwrite the default text payload.
    pub fn set_text(&mut self, text: impl Into<String>) {
        self.set_root_path(TEXT_KEY, Value::Str(text.into()));
    }

    /// Dotted write under the root. The root is constructed as a map and
    /// no API replaces it wholesale, so this cannot fail — the single
    /// allow-listed `expect` documenting that invariant.
    fn set_root_path(&mut self, path: &str, value: Value) {
        #[allow(clippy::expect_used)]
        self.root
            .set_path(path, value)
            .expect("sample root is a map");
    }

    /// Overwrite the text payload at an arbitrary dotted field.
    pub fn set_text_at(&mut self, field: &str, text: impl Into<String>) -> Result<()> {
        self.root.set_path(field, Value::Str(text.into()))
    }

    /// Read a metadata field (`meta.<key>`).
    pub fn meta(&self, key: &str) -> Option<&Value> {
        self.root.get_path(&format!("{META_KEY}.{key}"))
    }

    /// Write a metadata field (`meta.<key>`).
    pub fn set_meta(&mut self, key: &str, value: impl Into<Value>) {
        self.set_root_path(&format!("{META_KEY}.{key}"), value.into());
    }

    /// Read a numeric statistic (`stats.<key>`), coercing ints to floats.
    pub fn stat(&self, key: &str) -> Option<f64> {
        self.root
            .get_path(&format!("{STATS_KEY}.{key}"))
            .and_then(Value::as_float)
    }

    /// Write a numeric statistic (`stats.<key>`).
    ///
    /// Filters call this from `compute_stats` so that the decision in
    /// `process` — and any later analyzer pass — reads a recorded value
    /// rather than recomputing it (the decoupling of paper §3.2).
    pub fn set_stat(&mut self, key: &str, value: f64) {
        self.set_root_path(&format!("{STATS_KEY}.{key}"), Value::Float(value));
    }

    /// True when the statistic has already been computed.
    pub fn has_stat(&self, key: &str) -> bool {
        self.root.get_path(&format!("{STATS_KEY}.{key}")).is_some()
    }

    /// All recorded statistics as `(key, value)` pairs.
    pub fn stats(&self) -> Vec<(String, f64)> {
        match self.root.get_path(STATS_KEY).and_then(Value::as_map) {
            Some(m) => m
                .iter()
                .filter_map(|(k, v)| v.as_float().map(|f| (k.clone(), f)))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Approximate heap footprint in bytes (memory-accounting harness).
    pub fn approx_bytes(&self) -> usize {
        self.root.approx_bytes()
    }
}

impl From<&str> for Sample {
    fn from(text: &str) -> Self {
        Sample::from_text(text)
    }
}

impl From<String> for Sample {
    fn from(text: String) -> Self {
        Sample::from_text(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let mut s = Sample::from_text("hello world");
        assert_eq!(s.text(), "hello world");
        s.set_text("changed");
        assert_eq!(s.text(), "changed");
    }

    #[test]
    fn missing_text_reads_empty() {
        let s = Sample::new();
        assert_eq!(s.text(), "");
        assert_eq!(s.text_at("text.main_body"), "");
    }

    #[test]
    fn nested_text_fields() {
        let mut s = Sample::new();
        s.set_text_at("text.abstract", "short").unwrap();
        s.set_text_at("text.main_body", "long body").unwrap();
        assert_eq!(s.text_at("text.abstract"), "short");
        assert_eq!(s.text_at("text.main_body"), "long body");
        // Default text key now holds a map, not a string: reads as empty.
        assert_eq!(s.text(), "");
    }

    #[test]
    fn meta_and_stats_accessors() {
        let mut s = Sample::from_text("x");
        s.set_meta("language", "EN");
        s.set_meta("stars", 42i64);
        s.set_stat("word_count", 1.0);
        assert_eq!(s.meta("language").unwrap().as_str(), Some("EN"));
        assert_eq!(s.meta("stars").unwrap().as_int(), Some(42));
        assert_eq!(s.stat("word_count"), Some(1.0));
        assert!(s.has_stat("word_count"));
        assert!(!s.has_stat("perplexity"));
        assert_eq!(s.stats(), vec![("word_count".to_string(), 1.0)]);
    }

    #[test]
    fn from_value_rejects_non_map() {
        assert!(Sample::from_value(Value::from("str")).is_err());
        assert!(Sample::from_value(Value::map()).is_ok());
    }
}
