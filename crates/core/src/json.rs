//! A small, strict JSON parser producing [`Value`] trees.
//!
//! Serialization is `Value`'s `Display` impl; this module provides the
//! inverse. Implemented from scratch because `serde_json` is outside the
//! allowed dependency set (see DESIGN.md). Supports the full JSON grammar
//! with `\uXXXX` escapes (including surrogate pairs).

use std::collections::BTreeMap;

use crate::error::{DjError, Result};
use crate::value::Value;

/// Parse a JSON document into a [`Value`].
pub fn parse_json(input: &str) -> Result<Value> {
    let mut p = Parser {
        chars: input.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: &str) -> DjError {
        DjError::Parse(format!("json: {msg} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<()> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected `{c}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.parse_object(),
            Some('[') => self.parse_array(),
            Some('"') => Ok(Value::Str(self.parse_string()?)),
            Some('t') => self.parse_literal("true", Value::Bool(true)),
            Some('f') => self.parse_literal("false", Value::Bool(false)),
            Some('n') => self.parse_literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character `{c}`"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        for c in lit.chars() {
            if self.bump() != Some(c) {
                return Err(self.err(&format!("invalid literal, expected `{lit}`")));
            }
        }
        Ok(v)
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Map(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Map(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `}` in object"));
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Value::List(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Value::List(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `]` in array"));
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let hi = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require \uXXXX low surrogate.
                            self.expect('\\')?;
                            self.expect('u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code)
                        } else {
                            char::from_u32(hi)
                        };
                        out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if (c as u32) < 0x20 => {
                    return Err(self.err("raw control character in string"))
                }
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = c
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some('.') {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid float"))
        } else {
            // Fall back to float for integers beyond i64 range.
            text.parse::<i64>().map(Value::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("invalid number"))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), Value::Null);
        assert_eq!(parse_json("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_json("false").unwrap(), Value::Bool(false));
        assert_eq!(parse_json("42").unwrap(), Value::Int(42));
        assert_eq!(parse_json("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse_json("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse_json("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse_json("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_json(r#"{"a": [1, {"b": "c"}, null], "d": {"e": 2.5}}"#).unwrap();
        assert_eq!(v.get_path("d.e").unwrap().as_float(), Some(2.5));
        let list = v.get_path("a").unwrap().as_list().unwrap();
        assert_eq!(list.len(), 3);
        assert_eq!(list[1].get_path("b").unwrap().as_str(), Some("c"));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse_json(r#""a\"b\\c\nd\teA""#).unwrap(),
            Value::Str("a\"b\\c\nd\teA".into())
        );
    }

    #[test]
    fn surrogate_pairs() {
        assert_eq!(parse_json(r#""😀""#).unwrap(), Value::Str("😀".into()));
        assert!(parse_json(r#""\ud83d""#).is_err());
        assert!(parse_json(r#""\ud83dx""#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01x",
            "\"unterminated",
            "{\"a\":1} extra",
            "[1 2]",
            "nan",
        ] {
            assert!(parse_json(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn roundtrip_display_then_parse() {
        let mut v = Value::map();
        v.set_path("text", Value::from("line1\nline2\t\"quoted\""))
            .unwrap();
        v.set_path("meta.count", Value::Int(5)).unwrap();
        v.set_path("stats.ratio", Value::Float(0.25)).unwrap();
        v.set_path("tags", Value::from(vec!["a", "b"])).unwrap();
        let parsed = parse_json(&v.to_string()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn big_integers_fall_back_to_float() {
        let v = parse_json("99999999999999999999999").unwrap();
        assert!(matches!(v, Value::Float(_)));
    }

    #[test]
    fn whitespace_tolerance() {
        let v = parse_json(" \n\t{ \"a\" :\r[ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.get_path("a").unwrap().as_list().unwrap().len(), 2);
    }
}
