//! # Deterministic fault injection
//!
//! Chaos testing is only useful when a failing run can be replayed: this
//! module provides a seeded, counted [`FaultPlan`] that fires a chosen
//! [`ErrKind`] on the *N*th hit of a *named injection site*, so every
//! fault a test observed is reproducible from its `DJ_FAULTS` string.
//!
//! ## Sites
//!
//! Injection sites are string names threaded through the storage, IO and
//! execution layers (the full registry is [`SITES`]):
//!
//! | site                 | where it fires                                   |
//! |----------------------|--------------------------------------------------|
//! | `store.frame.write`  | spool frame encode→disk (bytes corrupted)        |
//! | `store.frame.read`   | spool frame disk→decode (bytes corrupted)        |
//! | `store.fpr.write`    | fingerprint sidecar write (bytes corrupted)      |
//! | `store.fpr.read`     | fingerprint sidecar read (bytes corrupted)       |
//! | `store.sidecar.load` | stats sidecar load (advisory: decode falls back) |
//! | `store.sidecar.save` | stats sidecar save (advisory: decode falls back) |
//! | `io.ingest.read`     | per-record corpus ingest                         |
//! | `io.egress.write`    | egress part write                                |
//! | `io.egress.rename`   | egress part atomic rename/commit                 |
//! | `exec.worker.step`   | per-shard stage pass on a pool worker            |
//! | `exec.shard.claim`   | shard claim in the streaming scheduler           |
//!
//! ## `DJ_FAULTS` syntax
//!
//! Comma-separated clauses:
//!
//! * `seed:N` — sets the plan seed (drives which byte a bit-flip hits /
//!   how many bytes a truncation drops). A seed-only plan derives one
//!   fault deterministically from the seed — the CI smoke-matrix form.
//! * `site:kind@n` — fire `kind` (`io` | `truncate` | `bitflip` |
//!   `panic`) on the `n`th hit of `site`; `@n` defaults to `@1`.
//!
//! e.g. `DJ_FAULTS=seed:7,store.frame.read:bitflip@2`.
//!
//! ## Hooks
//!
//! Sites come in two flavors. *Byte sites* pass their buffer through
//! [`corrupt`], where `truncate`/`bitflip` mutate the bytes in place —
//! the error then surfaces later, at the checksum/length validation of
//! whichever reader consumes them, exactly like real media corruption.
//! *Control sites* call [`check`], where every kind maps to an
//! immediate typed error (`truncate`/`bitflip` become
//! [`DjError::Storage`], since there is no buffer to damage). `panic`
//! panics at the site in both flavors, exercising the pool / runtime
//! `catch_unwind` paths.
//!
//! Hit counters live in the plan itself (shared via `Arc`), so a retry
//! that re-runs an executor with the same plan does **not** re-fire a
//! fault that already spent its hit — which is what lets the chaos
//! property ("retried run is byte-identical to the fault-free run")
//! hold for transient faults.
//!
//! A plan becomes visible to the storage/IO layers by being installed
//! process-globally with [`install`]; the returned guard restores the
//! previous plan on drop. With no plan installed every hook is a single
//! relaxed atomic load.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::error::{DjError, Result};
use crate::sync;

/// Every named injection site, in the order seed-derived plans index
/// them. Keep `docs/robustness.md` in sync when adding one.
pub const SITES: &[&str] = &[
    "store.frame.write",
    "store.frame.read",
    "store.fpr.write",
    "store.fpr.read",
    "store.sidecar.load",
    "store.sidecar.save",
    "io.ingest.read",
    "io.egress.write",
    "io.egress.rename",
    "exec.worker.step",
    "exec.shard.claim",
];

/// What an injection site does when its fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrKind {
    /// A synthetic `std::io::Error` (transient: retried).
    Io,
    /// Drop trailing bytes (byte sites) / typed truncation error
    /// (control sites). Transient: retried.
    Truncate,
    /// Flip one seed-chosen bit (byte sites) / typed checksum error
    /// (control sites). Transient: retried.
    BitFlip,
    /// Panic at the site — exercises the `catch_unwind` recovery paths.
    /// Deterministic: not retried.
    Panic,
}

/// All kinds, in the order seed-derived plans index them.
pub const KINDS: &[ErrKind] = &[
    ErrKind::Io,
    ErrKind::Truncate,
    ErrKind::BitFlip,
    ErrKind::Panic,
];

impl ErrKind {
    fn parse(s: &str) -> Option<ErrKind> {
        Some(match s {
            "io" => ErrKind::Io,
            "truncate" => ErrKind::Truncate,
            "bitflip" => ErrKind::BitFlip,
            "panic" => ErrKind::Panic,
            _ => return None,
        })
    }

    /// The `DJ_FAULTS` spelling of this kind.
    pub fn name(self) -> &'static str {
        match self {
            ErrKind::Io => "io",
            ErrKind::Truncate => "truncate",
            ErrKind::BitFlip => "bitflip",
            ErrKind::Panic => "panic",
        }
    }
}

/// One armed fault: fire `kind` on the `at`th hit of its site (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    pub kind: ErrKind,
    pub at: u64,
}

/// A seeded, counted set of armed faults. See the module docs for the
/// `DJ_FAULTS` grammar and firing semantics.
pub struct FaultPlan {
    seed: u64,
    faults: HashMap<String, FaultSpec>,
    /// Lifetime hit count per site — deliberately *not* reset between
    /// executor attempts, so a spent fault stays spent across retries.
    hits: Mutex<HashMap<String, u64>>,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("faults", &self.faults)
            .finish_non_exhaustive()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Parse a `DJ_FAULTS` string. Malformed clauses, unknown sites and
    /// unknown kinds are hard [`DjError::Config`] errors — a chaos run
    /// that silently ignored its plan would report false confidence.
    pub fn parse(spec: &str) -> Result<FaultPlan> {
        let mut seed = 0u64;
        let mut saw_seed = false;
        let mut faults = HashMap::new();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (site, rest) = clause.split_once(':').ok_or_else(|| {
                DjError::Config(format!(
                    "DJ_FAULTS clause `{clause}` is not `seed:N` or `site:kind@n`"
                ))
            })?;
            if site == "seed" {
                seed = rest.parse().map_err(|_| {
                    DjError::Config(format!("DJ_FAULTS seed `{rest}` is not a u64"))
                })?;
                saw_seed = true;
                continue;
            }
            if !SITES.contains(&site) {
                return Err(DjError::Config(format!(
                    "DJ_FAULTS names unknown site `{site}` (known: {})",
                    SITES.join(", ")
                )));
            }
            let (kind, at) = match rest.split_once('@') {
                Some((k, n)) => {
                    let at = n.parse::<u64>().ok().filter(|n| *n >= 1).ok_or_else(|| {
                        DjError::Config(format!(
                            "DJ_FAULTS hit count `{n}` in `{clause}` must be a positive integer"
                        ))
                    })?;
                    (k, at)
                }
                None => (rest, 1),
            };
            let kind = ErrKind::parse(kind).ok_or_else(|| {
                DjError::Config(format!(
                    "DJ_FAULTS kind `{kind}` in `{clause}` is not io|truncate|bitflip|panic"
                ))
            })?;
            faults.insert(site.to_string(), FaultSpec { kind, at });
        }
        if faults.is_empty() {
            if !saw_seed {
                return Err(DjError::Config(
                    "DJ_FAULTS must contain `seed:N` and/or `site:kind@n` clauses".into(),
                ));
            }
            // Seed-only plan: derive one fault from the seed — the CI
            // smoke-matrix form (`DJ_FAULTS=seed:K` for K in 0..M).
            let mut s = seed;
            let site = SITES[(splitmix64(&mut s) % SITES.len() as u64) as usize];
            let kind = KINDS[(splitmix64(&mut s) % KINDS.len() as u64) as usize];
            let at = 1 + splitmix64(&mut s) % 3;
            faults.insert(site.to_string(), FaultSpec { kind, at });
        }
        Ok(FaultPlan {
            seed,
            faults,
            hits: Mutex::new(HashMap::new()),
        })
    }

    /// Build a plan arming exactly `kind` on the `at`th hit of `site` —
    /// the programmatic form chaos tests use to enumerate the matrix.
    pub fn single(site: &str, kind: ErrKind, at: u64, seed: u64) -> FaultPlan {
        let mut faults = HashMap::new();
        faults.insert(
            site.to_string(),
            FaultSpec {
                kind,
                at: at.max(1),
            },
        );
        FaultPlan {
            seed,
            faults,
            hits: Mutex::new(HashMap::new()),
        }
    }

    /// The armed faults, keyed by site.
    pub fn faults(&self) -> &HashMap<String, FaultSpec> {
        &self.faults
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Count one hit of `site`; `Some(kind)` exactly when this hit is the
    /// armed one.
    fn fire(&self, site: &str) -> Option<ErrKind> {
        let spec = *self.faults.get(site)?;
        let mut hits = sync::lock(&self.hits);
        let n = hits.entry(site.to_string()).or_insert(0);
        *n += 1;
        (*n == spec.at).then_some(spec.kind)
    }

    /// Lifetime hit count of `site` (hits observed, fired or not).
    pub fn hits(&self, site: &str) -> u64 {
        sync::lock(&self.hits).get(site).copied().unwrap_or(0)
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static ACTIVE: RwLock<Option<Arc<FaultPlan>>> = RwLock::new(None);

/// Uninstalls the plan (restoring any previous one) on drop.
#[must_use = "dropping the guard uninstalls the fault plan"]
pub struct FaultGuard {
    prev: Option<Arc<FaultPlan>>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        let mut slot = sync::write(&ACTIVE);
        *slot = self.prev.take();
        ENABLED.store(slot.is_some(), Ordering::Release);
    }
}

/// Install `plan` process-globally for the lifetime of the returned
/// guard. Counters live in the `Arc`, so re-installing the same plan
/// (e.g. per retry attempt) keeps its hit history.
pub fn install(plan: Arc<FaultPlan>) -> FaultGuard {
    let mut slot = sync::write(&ACTIVE);
    let prev = slot.replace(plan);
    ENABLED.store(true, Ordering::Release);
    FaultGuard { prev }
}

fn active() -> Option<Arc<FaultPlan>> {
    if !ENABLED.load(Ordering::Acquire) {
        return None;
    }
    sync::read(&ACTIVE).clone()
}

fn injected_io(site: &str) -> DjError {
    DjError::Io(std::io::Error::other(format!(
        "injected io fault at `{site}`"
    )))
}

/// Whether the active plan arms any fault at `site` (hit-count agnostic).
/// Lets byte sites skip a defensive buffer copy when nothing is armed —
/// the common case, guarded by one relaxed atomic load.
pub fn armed(site: &str) -> bool {
    active().is_some_and(|p| p.faults.contains_key(site))
}

/// Control-site hook: errors (or panics) when the active plan fires at
/// `site`; a no-op otherwise.
pub fn check(site: &str) -> Result<()> {
    let Some(plan) = active() else { return Ok(()) };
    let Some(kind) = plan.fire(site) else {
        return Ok(());
    };
    match kind {
        ErrKind::Io => Err(injected_io(site)),
        ErrKind::Truncate => Err(DjError::Storage(format!(
            "injected fault: truncated data at `{site}`"
        ))),
        ErrKind::BitFlip => Err(DjError::Storage(format!(
            "injected fault: checksum corruption at `{site}`"
        ))),
        ErrKind::Panic => panic!("injected fault: panic at `{site}`"),
    }
}

/// Byte-site hook: when the plan fires at `site`, `truncate`/`bitflip`
/// damage `bytes` in place (the error then surfaces at the consuming
/// reader's validation, like real media corruption); `io` errors and
/// `panic` panics immediately.
pub fn corrupt(site: &str, bytes: &mut Vec<u8>) -> Result<()> {
    let Some(plan) = active() else { return Ok(()) };
    let Some(kind) = plan.fire(site) else {
        return Ok(());
    };
    match kind {
        ErrKind::Io => Err(injected_io(site)),
        ErrKind::Panic => panic!("injected fault: panic at `{site}`"),
        ErrKind::Truncate => {
            let cut = 1 + (plan.seed % 7) as usize;
            bytes.truncate(bytes.len().saturating_sub(cut));
            Ok(())
        }
        ErrKind::BitFlip => {
            if bytes.is_empty() {
                bytes.push(0xFF);
            } else {
                let bit = (plan.seed % (bytes.len() as u64 * 8)) as usize;
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The install slot is process-global; tests that install serialize
    /// through this gate (poison-tolerant: one test panics on purpose).
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn parse_explicit_clause() {
        let plan = FaultPlan::parse("seed:9,store.frame.read:bitflip@2").unwrap();
        assert_eq!(plan.seed(), 9);
        assert_eq!(
            plan.faults().get("store.frame.read"),
            Some(&FaultSpec {
                kind: ErrKind::BitFlip,
                at: 2
            })
        );
    }

    #[test]
    fn parse_defaults_hit_to_one() {
        let plan = FaultPlan::parse("io.ingest.read:io").unwrap();
        assert_eq!(plan.faults()["io.ingest.read"].at, 1);
    }

    #[test]
    fn seed_only_plans_are_deterministic_and_cover_sites() {
        let a = FaultPlan::parse("seed:3").unwrap();
        let b = FaultPlan::parse("seed:3").unwrap();
        assert_eq!(a.faults(), b.faults());
        // Different seeds reach different sites eventually.
        let sites: std::collections::HashSet<String> = (0..64)
            .map(|s| {
                FaultPlan::parse(&format!("seed:{s}"))
                    .unwrap()
                    .faults()
                    .keys()
                    .next()
                    .cloned()
                    .unwrap()
            })
            .collect();
        assert!(sites.len() > 3, "seed derivation stuck on {sites:?}");
    }

    #[test]
    fn malformed_specs_are_config_errors() {
        for bad in [
            "",
            "seed:x",
            "nonsense",
            "no.such.site:io",
            "store.frame.read:explode",
            "store.frame.read:io@0",
            "store.frame.read:io@-1",
        ] {
            assert!(
                matches!(FaultPlan::parse(bad), Err(DjError::Config(_))),
                "`{bad}` should be a config error"
            );
        }
    }

    #[test]
    fn fires_exactly_on_the_nth_hit() {
        let plan = FaultPlan::single("exec.shard.claim", ErrKind::Io, 3, 0);
        assert_eq!(plan.fire("exec.shard.claim"), None);
        assert_eq!(plan.fire("exec.shard.claim"), None);
        assert_eq!(plan.fire("exec.shard.claim"), Some(ErrKind::Io));
        assert_eq!(plan.fire("exec.shard.claim"), None, "fault stays spent");
        assert_eq!(plan.fire("other.site"), None);
        assert_eq!(plan.hits("exec.shard.claim"), 4);
    }

    #[test]
    fn install_guard_scopes_the_plan() {
        let _gate = sync::lock(&GATE);
        let plan = Arc::new(FaultPlan::single("io.ingest.read", ErrKind::Io, 1, 0));
        assert!(check("io.ingest.read").is_ok(), "no plan installed");
        {
            let _g = install(Arc::clone(&plan));
            assert!(check("io.ingest.read").is_err(), "armed hit fires");
            assert!(check("io.ingest.read").is_ok(), "spent fault is inert");
        }
        assert!(
            check("io.ingest.read").is_ok(),
            "guard uninstalled the plan"
        );
        assert_eq!(plan.hits("io.ingest.read"), 2);
    }

    #[test]
    fn corrupt_truncate_and_bitflip_damage_bytes() {
        let _gate = sync::lock(&GATE);
        let plan = Arc::new(FaultPlan::single(
            "store.frame.write",
            ErrKind::Truncate,
            1,
            11,
        ));
        let _g = install(plan);
        let mut bytes = vec![0u8; 64];
        corrupt("store.frame.write", &mut bytes).unwrap();
        assert!(bytes.len() < 64, "truncation removed trailing bytes");

        let plan = Arc::new(FaultPlan::single(
            "store.frame.write",
            ErrKind::BitFlip,
            1,
            11,
        ));
        let _g = install(plan);
        let mut bytes = vec![0u8; 64];
        corrupt("store.frame.write", &mut bytes).unwrap();
        assert_eq!(bytes.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
    }

    #[test]
    #[should_panic(expected = "injected fault: panic at `exec.worker.step`")]
    fn panic_kind_panics_at_the_site() {
        let _gate = sync::lock(&GATE);
        let plan = Arc::new(FaultPlan::single("exec.worker.step", ErrKind::Panic, 1, 0));
        let _g = install(plan);
        let _ = check("exec.worker.step");
    }
}
