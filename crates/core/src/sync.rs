//! Poison-tolerant lock helpers.
//!
//! A poisoned mutex means *some* thread panicked while holding the guard
//! — for the executor's bookkeeping locks (hit counters, spool slot
//! tables, part logs) the protected data is still structurally valid, and
//! propagating the poison would turn one worker panic into a cascade of
//! secondary panics on every other thread touching the lock. These
//! helpers recover the guard instead, so the *original* panic (already
//! captured and re-raised by the pool / runtime) stays the only failure.

use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::time::Duration;

/// Lock `m`, recovering the guard if a previous holder panicked.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-lock `l`, recovering the guard if a writer panicked.
pub fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-lock `l`, recovering the guard if a holder panicked.
pub fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Wait on `cv`, recovering the guard if the mutex was poisoned while
/// parked.
pub fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`wait`] with a timeout (the timed-out flag is dropped: callers here
/// re-check their predicate either way).
pub fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> MutexGuard<'a, T> {
    cv.wait_timeout(guard, dur)
        .unwrap_or_else(PoisonError::into_inner)
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;

    #[test]
    fn lock_recovers_after_a_panicked_holder() {
        let m = Mutex::new(7usize);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7);
        *lock(&m) += 1;
        assert_eq!(*lock(&m), 8);
    }

    #[test]
    fn rwlock_recovers_after_a_panicked_writer() {
        let l = RwLock::new(3usize);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = l.write().unwrap();
            panic!("poison it");
        }));
        assert_eq!(*read(&l), 3);
        *write(&l) = 4;
        assert_eq!(*read(&l), 4);
    }
}
