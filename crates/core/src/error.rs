//! Error types shared across the Data-Juicer workspace.

use std::fmt;

/// Unified error type for all Data-Juicer operations.
#[derive(Debug)]
pub enum DjError {
    /// Configuration is malformed or inconsistent (unknown OP, bad parameter...).
    Config(String),
    /// A parser failed (YAML/JSON recipe, JSONL dataset, ...).
    Parse(String),
    /// An operator failed while processing a sample or dataset.
    Op { op: String, message: String },
    /// Requested field/path is missing or has the wrong type.
    Field(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Cache/checkpoint storage failure (corrupt file, version mismatch...).
    Storage(String),
    /// The job was cancelled (service runtime `JobHandle::cancel`).
    Cancelled,
}

impl fmt::Display for DjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DjError::Config(m) => write!(f, "config error: {m}"),
            DjError::Parse(m) => write!(f, "parse error: {m}"),
            DjError::Op { op, message } => write!(f, "operator `{op}` failed: {message}"),
            DjError::Field(m) => write!(f, "field error: {m}"),
            DjError::Io(e) => write!(f, "io error: {e}"),
            DjError::Storage(m) => write!(f, "storage error: {m}"),
            DjError::Cancelled => write!(f, "job cancelled"),
        }
    }
}

impl std::error::Error for DjError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DjError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DjError {
    fn from(e: std::io::Error) -> Self {
        DjError::Io(e)
    }
}

/// Convenience alias used across every crate in the workspace.
pub type Result<T> = std::result::Result<T, DjError>;

impl DjError {
    /// Build an operator error with a display-able message.
    pub fn op(op: impl Into<String>, message: impl fmt::Display) -> Self {
        DjError::Op {
            op: op.into(),
            message: message.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = DjError::Config("missing key".into());
        assert_eq!(e.to_string(), "config error: missing key");
        let e = DjError::op("word_count_filter", "bad range");
        assert_eq!(
            e.to_string(),
            "operator `word_count_filter` failed: bad range"
        );
    }

    #[test]
    fn io_error_converts_and_chains_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DjError = io.into();
        assert!(matches!(e, DjError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
