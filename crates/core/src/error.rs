//! Error types shared across the Data-Juicer workspace.

use std::fmt;

/// Unified error type for all Data-Juicer operations.
#[derive(Debug)]
pub enum DjError {
    /// Configuration is malformed or inconsistent (unknown OP, bad parameter...).
    Config(String),
    /// A parser failed (YAML/JSON recipe, JSONL dataset, ...).
    Parse(String),
    /// An operator failed while processing a sample or dataset.
    Op { op: String, message: String },
    /// Requested field/path is missing or has the wrong type.
    Field(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Cache/checkpoint storage failure (corrupt file, version mismatch...).
    Storage(String),
    /// The job was cancelled (service runtime `JobHandle::cancel`).
    Cancelled,
}

impl fmt::Display for DjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DjError::Config(m) => write!(f, "config error: {m}"),
            DjError::Parse(m) => write!(f, "parse error: {m}"),
            DjError::Op { op, message } => write!(f, "operator `{op}` failed: {message}"),
            DjError::Field(m) => write!(f, "field error: {m}"),
            DjError::Io(e) => write!(f, "io error: {e}"),
            DjError::Storage(m) => write!(f, "storage error: {m}"),
            DjError::Cancelled => write!(f, "job cancelled"),
        }
    }
}

impl std::error::Error for DjError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DjError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DjError {
    fn from(e: std::io::Error) -> Self {
        DjError::Io(e)
    }
}

/// Convenience alias used across every crate in the workspace.
pub type Result<T> = std::result::Result<T, DjError>;

impl DjError {
    /// Build an operator error with a display-able message.
    pub fn op(op: impl Into<String>, message: impl fmt::Display) -> Self {
        DjError::Op {
            op: op.into(),
            message: message.to_string(),
        }
    }

    /// Whether retrying the same work could plausibly succeed. IO and
    /// storage failures (truncated frames, checksum mismatches, missing
    /// files) are environmental and worth a retry; config, parse, field
    /// and operator errors are deterministic — the same input produces
    /// the same failure — and cancellation is a decision, not a fault.
    /// The service runtime's `RetryPolicy` keys off this split.
    pub fn is_transient(&self) -> bool {
        matches!(self, DjError::Io(_) | DjError::Storage(_))
    }
}

/// What to do when a single record fails — a malformed ingest line or a
/// sample an OP cannot process. `Fail` aborts the job on the first bad
/// record (the historical behaviour and the default); `Skip` drops the
/// record and keeps going; `Quarantine` drops it *and* writes the
/// original record plus its error to a checksummed sidecar next to the
/// egress manifest. `Skip` and `Quarantine` are bounded by
/// `max_error_ratio` — the job still fails once bad records exceed the
/// budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnError {
    #[default]
    Fail,
    Skip,
    Quarantine,
}

impl OnError {
    pub fn from_name(name: &str) -> Result<OnError> {
        match name {
            "fail" => Ok(OnError::Fail),
            "skip" => Ok(OnError::Skip),
            "quarantine" => Ok(OnError::Quarantine),
            other => Err(DjError::Config(format!(
                "unknown on_error policy `{other}` (expected `fail`, `skip` or `quarantine`)"
            ))),
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            OnError::Fail => "fail",
            OnError::Skip => "skip",
            OnError::Quarantine => "quarantine",
        }
    }
}

/// Render a `catch_unwind` payload as text: the panic message when the
/// payload is the `&str`/`String` every `panic!` form produces, a
/// placeholder otherwise. Lets pool- and job-level recovery report *what*
/// panicked instead of a generic "thread panicked".
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = DjError::Config("missing key".into());
        assert_eq!(e.to_string(), "config error: missing key");
        let e = DjError::op("word_count_filter", "bad range");
        assert_eq!(
            e.to_string(),
            "operator `word_count_filter` failed: bad range"
        );
    }

    #[test]
    fn transient_split_matches_retry_policy() {
        assert!(DjError::Io(std::io::Error::other("flaky disk")).is_transient());
        assert!(DjError::Storage("checksum mismatch".into()).is_transient());
        for e in [
            DjError::Config("bad knob".into()),
            DjError::Parse("bad json".into()),
            DjError::op("word_count_filter", "poison sample"),
            DjError::Field("missing".into()),
            DjError::Cancelled,
        ] {
            assert!(!e.is_transient(), "{e} must be deterministic");
        }
    }

    #[test]
    fn panic_message_downcasts_both_string_forms() {
        let p = std::panic::catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "static str");
        let p = std::panic::catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "formatted 7");
        let p = std::panic::catch_unwind(|| std::panic::panic_any(42i32)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }

    #[test]
    fn io_error_converts_and_chains_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DjError = io.into();
        assert!(matches!(e, DjError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
