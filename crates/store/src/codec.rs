//! Cache-file compression codecs (paper §6, "Optimized Space Utilization").
//!
//! The original system wires zstd/LZ4 into its cache manager; those crates
//! are outside the allowed dependency set, so this module implements two
//! codecs from scratch with the same role — shrink cache files between OPs
//! at negligible (de)compression cost relative to processing time:
//!
//! * [`Codec::Rle`] — byte run-length encoding (fast, wins on repetitive
//!   cache pages);
//! * [`Codec::Djz`] — an LZ77-family codec with a 64 KiB window and greedy
//!   hash-table matching (the general-purpose default);
//! * [`Codec::None`] — passthrough.
//!
//! Every frame starts with a 4-byte magic + codec id so files self-describe.

use dj_core::{DjError, Result};

/// Available codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    None,
    Rle,
    Djz,
}

const MAGIC: &[u8; 3] = b"DJZ";

impl Codec {
    fn id(self) -> u8 {
        match self {
            Codec::None => 0,
            Codec::Rle => 1,
            Codec::Djz => 2,
        }
    }

    fn from_id(id: u8) -> Result<Codec> {
        match id {
            0 => Ok(Codec::None),
            1 => Ok(Codec::Rle),
            2 => Ok(Codec::Djz),
            other => Err(DjError::Storage(format!("unknown codec id {other}"))),
        }
    }
}

/// Compress `data` into a self-describing frame.
pub fn compress(data: &[u8], codec: Codec) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(MAGIC);
    out.push(codec.id());
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    match codec {
        Codec::None => out.extend_from_slice(data),
        Codec::Rle => rle_compress(data, &mut out),
        Codec::Djz => djz_compress(data, &mut out),
    }
    out
}

/// Decompress a frame produced by [`compress`].
pub fn decompress(frame: &[u8]) -> Result<Vec<u8>> {
    if frame.len() < 12 || &frame[..3] != MAGIC {
        return Err(DjError::Storage("bad compression frame header".into()));
    }
    let codec = Codec::from_id(frame[3])?;
    let expected = crate::serialize::le_u64(&frame[4..12]) as usize;
    let body = &frame[12..];
    let out = match codec {
        Codec::None => body.to_vec(),
        Codec::Rle => rle_decompress(body, expected)?,
        Codec::Djz => djz_decompress(body, expected)?,
    };
    if out.len() != expected {
        return Err(DjError::Storage(format!(
            "decompressed size mismatch: got {}, expected {expected}",
            out.len()
        )));
    }
    Ok(out)
}

// ---- RLE -----------------------------------------------------------------
// Control byte c: 0x00..=0x7F → literal run of c+1 bytes follows;
//                 0x80..=0xFF → repeat next byte (c - 0x80 + 2) times.

fn rle_compress(data: &[u8], out: &mut Vec<u8>) {
    let mut i = 0;
    let mut lit_start = 0;
    while i < data.len() {
        // Measure the run at i.
        let b = data[i];
        let mut run = 1;
        while i + run < data.len() && data[i + run] == b && run < 129 {
            run += 1;
        }
        if run >= 3 {
            flush_literals(&data[lit_start..i], out);
            out.push(0x80 + (run - 2) as u8);
            out.push(b);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&data[lit_start..], out);
}

fn flush_literals(mut lits: &[u8], out: &mut Vec<u8>) {
    while !lits.is_empty() {
        let n = lits.len().min(128);
        out.push((n - 1) as u8);
        out.extend_from_slice(&lits[..n]);
        lits = &lits[n..];
    }
}

fn rle_decompress(body: &[u8], expected: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(expected);
    let mut i = 0;
    while i < body.len() {
        let c = body[i];
        i += 1;
        if c < 0x80 {
            let n = c as usize + 1;
            if i + n > body.len() {
                return Err(DjError::Storage("rle: truncated literal run".into()));
            }
            out.extend_from_slice(&body[i..i + n]);
            i += n;
        } else {
            if i >= body.len() {
                return Err(DjError::Storage("rle: truncated repeat".into()));
            }
            let n = (c - 0x80) as usize + 2;
            let b = body[i];
            i += 1;
            out.extend(std::iter::repeat_n(b, n));
        }
    }
    Ok(out)
}

// ---- DJZ (LZ77) ------------------------------------------------------------
// Token: control byte t.
//   t & 0x80 == 0 → literal run of (t+1) bytes (1..=128) follows.
//   t & 0x80 != 0 → match of length ((t & 0x7F) + MIN_MATCH), followed by a
//                   2-byte little-endian back-offset (1..=65535).

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 127 + MIN_MATCH;
const WINDOW: usize = 65535;
const HASH_BITS: u32 = 15;

#[inline]
fn djz_hash(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn djz_compress(data: &[u8], out: &mut Vec<u8>) {
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0;
    let mut lit_start = 0;
    while i + MIN_MATCH <= data.len() {
        let h = djz_hash(&data[i..]);
        let cand = table[h];
        table[h] = i;
        let mut match_len = 0;
        if cand != usize::MAX
            && i - cand <= WINDOW
            && data[cand..cand + MIN_MATCH] == data[i..i + MIN_MATCH]
        {
            let max = (data.len() - i).min(MAX_MATCH);
            let mut l = MIN_MATCH;
            while l < max && data[cand + l] == data[i + l] {
                l += 1;
            }
            match_len = l;
        }
        if match_len >= MIN_MATCH {
            flush_djz_literals(&data[lit_start..i], out);
            out.push(0x80 | (match_len - MIN_MATCH) as u8);
            out.extend_from_slice(&((i - cand) as u16).to_le_bytes());
            // Index a few positions inside the match to keep the table warm.
            let end = i + match_len;
            let mut j = i + 1;
            while j + MIN_MATCH <= data.len() && j < end {
                table[djz_hash(&data[j..])] = j;
                j += 3;
            }
            i = end;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_djz_literals(&data[lit_start..], out);
}

fn flush_djz_literals(mut lits: &[u8], out: &mut Vec<u8>) {
    while !lits.is_empty() {
        let n = lits.len().min(128);
        out.push((n - 1) as u8);
        out.extend_from_slice(&lits[..n]);
        lits = &lits[n..];
    }
}

fn djz_decompress(body: &[u8], expected: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(expected);
    let mut i = 0;
    while i < body.len() {
        let t = body[i];
        i += 1;
        if t & 0x80 == 0 {
            let n = t as usize + 1;
            if i + n > body.len() {
                return Err(DjError::Storage("djz: truncated literal run".into()));
            }
            out.extend_from_slice(&body[i..i + n]);
            i += n;
        } else {
            if i + 2 > body.len() {
                return Err(DjError::Storage("djz: truncated match token".into()));
            }
            let len = (t & 0x7F) as usize + MIN_MATCH;
            let offset = u16::from_le_bytes([body[i], body[i + 1]]) as usize;
            i += 2;
            if offset == 0 || offset > out.len() {
                return Err(DjError::Storage("djz: invalid match offset".into()));
            }
            let start = out.len() - offset;
            // Overlapping copies are the point of LZ77; copy byte-wise.
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    Ok(out)
}

/// Compression ratio (compressed/original); > 1 means expansion.
pub fn ratio(original: usize, compressed: usize) -> f64 {
    if original == 0 {
        return 1.0;
    }
    compressed as f64 / original as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[u8], codec: Codec) {
        let frame = compress(data, codec);
        let back = decompress(&frame).unwrap();
        assert_eq!(back, data, "roundtrip failed for {codec:?}");
    }

    #[test]
    fn roundtrips_basic() {
        for codec in [Codec::None, Codec::Rle, Codec::Djz] {
            roundtrip(b"", codec);
            roundtrip(b"a", codec);
            roundtrip(b"hello world hello world hello world", codec);
            roundtrip(&[0u8; 10_000], codec);
            roundtrip("数据处理系统 data processing".as_bytes(), codec);
        }
    }

    #[test]
    fn djz_compresses_repetitive_text() {
        let data = "the quick brown fox jumps over the lazy dog. "
            .repeat(200)
            .into_bytes();
        let frame = compress(&data, Codec::Djz);
        assert!(
            frame.len() < data.len() / 4,
            "djz ratio {:.3}",
            ratio(data.len(), frame.len())
        );
        roundtrip(&data, Codec::Djz);
    }

    #[test]
    fn rle_compresses_runs() {
        let mut data = Vec::new();
        for b in 0..50u8 {
            data.extend(std::iter::repeat_n(b, 100));
        }
        let frame = compress(&data, Codec::Rle);
        assert!(frame.len() < data.len() / 10);
        roundtrip(&data, Codec::Rle);
    }

    #[test]
    fn corrupt_frames_rejected() {
        assert!(decompress(b"xx").is_err());
        assert!(decompress(b"BAD0aaaaaaaaaa").is_err());
        let mut frame = compress(b"hello hello hello hello", Codec::Djz);
        frame.truncate(frame.len() - 3);
        assert!(decompress(&frame).is_err());
        // Wrong declared size.
        let mut frame2 = compress(b"abc", Codec::None);
        frame2[4] = 99;
        assert!(decompress(&frame2).is_err());
    }

    #[test]
    fn overlapping_match_decodes() {
        // "aaaa..." forces matches with offset 1 (maximal overlap).
        let data = vec![b'a'; 1000];
        roundtrip(&data, Codec::Djz);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_djz(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            roundtrip(&data, Codec::Djz);
        }

        #[test]
        fn prop_roundtrip_rle(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            roundtrip(&data, Codec::Rle);
        }

        #[test]
        fn prop_roundtrip_structured(seed in any::<u64>()) {
            // Structured text resembling cache payloads.
            let mut s = String::new();
            let mut x = seed;
            for _ in 0..200 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                s.push_str(match x % 7 {
                    0 => "{\"text\":\"sample\",",
                    1 => "\"stats\":{\"wc\": 42},",
                    2 => "the quick brown fox ",
                    3 => "数据处理 ",
                    4 => "\n",
                    5 => "aaaaaaaaaaaaaaa",
                    _ => "0123456789",
                });
            }
            roundtrip(s.as_bytes(), Codec::Djz);
            roundtrip(s.as_bytes(), Codec::Rle);
        }
    }
}
