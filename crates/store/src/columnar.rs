//! Columnar shard frames (`DJSC`): decode only the bytes an OP touches.
//!
//! A row frame (`DJSF`) serializes whole samples, so a stage whose OPs read
//! one field still decodes (and re-encodes) every metadata column. A
//! columnar frame stores each *top-level column* of the samples' root maps
//! as its own contiguous, individually compressed and checksummed region,
//! addressable from an offset table:
//!
//! ```text
//! ┌──────────┬──────────────┬──────────────┬─────────────────────┐
//! │ "DJSC"   │ payload_len  │ checksum     │ payload             │
//! │ 4 bytes  │ u64 LE       │ u64 LE (FNV) │ (not compressed)    │
//! └──────────┴──────────────┴──────────────┴─────────────────────┘
//!
//! payload:
//!   version       u8 (= 1)
//!   sample_count  u64 LE
//!   column_count  u32 LE
//!   directory, one entry per column, sorted by name:
//!     name_len  u32 LE, name bytes (UTF-8)
//!     offset    u64 LE   region start, relative to the end of the directory
//!     len       u64 LE   compressed region length
//!     raw_len   u64 LE   decompressed region length
//!     checksum  u64 LE   FNV-1a of the compressed region
//!   regions, concatenated in directory order
//!
//! region (before compression), one entry per sample:
//!   presence  u8 (0 = column absent in this sample, 1 = present)
//!   value     tagged value (same encoding as `serialize`), iff present
//! ```
//!
//! The presence byte distinguishes a *missing* column from an explicit
//! `null`, so columnar↔row round-trips are value-identical. The envelope
//! shares the row frame's header shape (magic, length, FNV checksum), so
//! spool slots and multi-frame cache streams can mix both formats — readers
//! sniff the 4-byte magic.
//!
//! Two access patterns motivate the format:
//!
//! * **projection** — [`ColumnarSlab::decode_projected`] materializes only
//!   the columns a stage's field footprints name (and
//!   [`ColumnarSlab::read_column`] feeds dedup hash passes a single column's
//!   texts as borrowed `Cow`s without building samples at all);
//! * **passthrough splice** — [`ColumnarSlab::splice`] copies the regions of
//!   untouched columns into the output frame byte-for-byte (verbatim when no
//!   sample was dropped; entry-skipped, never value-decoded, when a filter
//!   dropped samples).

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

use bytes::{BufMut, BytesMut};

use dj_core::{Dataset, DjError, Result, Sample, Value};
use dj_hash::fnv1a;

use crate::codec::{compress, decompress, Codec};
use crate::serialize::{
    le_u64, read_value_slice, skip_value, take_str, take_u32, take_u64, take_u8, walk_path,
    write_value,
};
use crate::shard_stream::{HEADER_LEN, MAX_FRAME_PAYLOAD};

/// Magic prefix of columnar shard frames.
pub const COLUMNAR_FRAME_MAGIC: &[u8; 4] = b"DJSC";

const COLUMNAR_VERSION: u8 = 1;

/// Encode one shard as a columnar frame.
pub fn encode_columnar_frame(shard: &Dataset, codec: Codec) -> Vec<u8> {
    // Column set = union of top-level keys across all samples, sorted.
    let mut names: BTreeSet<&str> = BTreeSet::new();
    for s in shard.iter() {
        if let Value::Map(m) = s.value() {
            names.extend(m.keys().map(String::as_str));
        }
    }

    // Build each column's (compressed) region.
    let mut regions: Vec<(&str, Vec<u8>, u64)> = Vec::with_capacity(names.len());
    for name in &names {
        let mut body = BytesMut::new();
        for s in shard.iter() {
            match s.value() {
                Value::Map(m) => match m.get(*name) {
                    Some(v) => {
                        body.put_u8(1);
                        write_value(&mut body, v);
                    }
                    None => body.put_u8(0),
                },
                _ => body.put_u8(0),
            }
        }
        let raw_len = body.len() as u64;
        regions.push((name, compress(&body, codec), raw_len));
    }

    // Directory + concatenated regions form the payload.
    let mut payload = BytesMut::new();
    payload.put_u8(COLUMNAR_VERSION);
    payload.put_u64_le(shard.len() as u64);
    payload.put_u32_le(regions.len() as u32);
    let mut offset = 0u64;
    for (name, region, raw_len) in &regions {
        payload.put_u32_le(name.len() as u32);
        payload.put_slice(name.as_bytes());
        payload.put_u64_le(offset);
        payload.put_u64_le(region.len() as u64);
        payload.put_u64_le(*raw_len);
        payload.put_u64_le(fnv1a(region));
        offset += region.len() as u64;
    }
    for (_, region, _) in &regions {
        payload.put_slice(region);
    }

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(COLUMNAR_FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode a columnar frame *payload* (envelope already stripped and
/// checksum-verified) into a dataset — the multi-frame stream reader's
/// entry point.
pub(crate) fn decode_columnar_payload(payload: &[u8]) -> Result<Dataset> {
    ColumnarSlab::from_payload(payload.to_vec())?.decode()
}

/// One column's directory entry.
#[derive(Debug, Clone)]
struct ColumnEntry {
    name: String,
    /// Absolute byte range of the compressed region within the payload.
    start: usize,
    len: usize,
    raw_len: u64,
    checksum: u64,
}

/// A loaded-but-undecoded columnar frame.
///
/// The payload stays as one owned byte buffer; every accessor decompresses
/// and decodes only the regions it is asked for.
#[derive(Debug)]
pub struct ColumnarSlab {
    payload: Vec<u8>,
    samples: usize,
    columns: Vec<ColumnEntry>,
}

impl ColumnarSlab {
    /// Parse one columnar frame held fully in memory (envelope + payload).
    pub fn from_frame_bytes(frame: &[u8]) -> Result<ColumnarSlab> {
        if frame.len() < HEADER_LEN {
            return Err(DjError::Storage(format!(
                "truncated columnar frame header ({} of {HEADER_LEN} bytes)",
                frame.len()
            )));
        }
        if &frame[..4] != COLUMNAR_FRAME_MAGIC {
            return Err(DjError::Storage("bad columnar frame magic".into()));
        }
        let len = le_u64(&frame[4..12]);
        if len > MAX_FRAME_PAYLOAD {
            return Err(DjError::Storage(format!(
                "implausible columnar frame length {len}"
            )));
        }
        let checksum = le_u64(&frame[12..20]);
        let body = &frame[HEADER_LEN..];
        if (body.len() as u64) < len {
            return Err(DjError::Storage(format!(
                "truncated columnar frame payload ({} of {len} bytes)",
                body.len()
            )));
        }
        if (body.len() as u64) > len {
            return Err(DjError::Storage(
                "trailing bytes after columnar frame".into(),
            ));
        }
        if fnv1a(body) != checksum {
            return Err(DjError::Storage(
                "columnar frame checksum mismatch (corrupted spill data)".into(),
            ));
        }
        ColumnarSlab::from_payload(body.to_vec())
    }

    /// Load a single-frame file (a spool slot) into a slab.
    pub fn load(path: impl AsRef<Path>) -> Result<ColumnarSlab> {
        let path = path.as_ref();
        let mut bytes = fs::read(path)
            .map_err(|e| DjError::Storage(format!("columnar frame missing at {path:?}: {e}")))?;
        dj_core::faults::corrupt("store.frame.read", &mut bytes)?;
        ColumnarSlab::from_frame_bytes(&bytes)
    }

    fn from_payload(payload: Vec<u8>) -> Result<ColumnarSlab> {
        let mut cur: &[u8] = &payload;
        let version = take_u8(&mut cur)?;
        if version != COLUMNAR_VERSION {
            return Err(DjError::Storage(format!(
                "unsupported columnar format version {version}"
            )));
        }
        let samples = take_u64(&mut cur)? as usize;
        let count = take_u32(&mut cur)? as usize;
        let mut raw_columns = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let name = take_str(&mut cur)?.to_string();
            let offset = take_u64(&mut cur)?;
            let len = take_u64(&mut cur)?;
            let raw_len = take_u64(&mut cur)?;
            let checksum = take_u64(&mut cur)?;
            raw_columns.push((name, offset, len, raw_len, checksum));
        }
        // Regions base = everything after the directory.
        let regions_base = payload.len() - cur.len();
        let regions_len = cur.len() as u64;
        let mut columns = Vec::with_capacity(raw_columns.len());
        for (name, offset, len, raw_len, checksum) in raw_columns {
            let end = offset.checked_add(len).ok_or_else(|| {
                DjError::Storage(format!("columnar region overflow for column `{name}`"))
            })?;
            if end > regions_len {
                return Err(DjError::Storage(format!(
                    "columnar region for column `{name}` out of bounds ({end} > {regions_len})"
                )));
            }
            columns.push(ColumnEntry {
                name,
                start: regions_base + offset as usize,
                len: len as usize,
                raw_len,
                checksum,
            });
        }
        Ok(ColumnarSlab {
            payload,
            samples,
            columns,
        })
    }

    /// Sample count, from the payload header.
    pub fn sample_count(&self) -> usize {
        self.samples
    }

    /// Payload size in bytes (the slab's memory footprint).
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Column names in directory (sorted) order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Decompressed size of one column's region, if present.
    pub fn column_raw_len(&self, name: &str) -> Option<u64> {
        self.entry(name).map(|c| c.raw_len)
    }

    /// Total decompressed bytes across all column regions.
    pub fn total_raw_len(&self) -> u64 {
        self.columns.iter().map(|c| c.raw_len).sum()
    }

    fn entry(&self, name: &str) -> Option<&ColumnEntry> {
        self.columns.iter().find(|c| c.name == name)
    }

    fn region_bytes(&self, c: &ColumnEntry) -> Result<&[u8]> {
        let region = &self.payload[c.start..c.start + c.len];
        if fnv1a(region) != c.checksum {
            return Err(DjError::Storage(format!(
                "columnar region checksum mismatch for column `{}`",
                c.name
            )));
        }
        Ok(region)
    }

    /// Decompress one column's region (checksum-verified), or `Ok(None)`
    /// when the frame has no such column.
    pub fn read_column(&self, name: &str) -> Result<Option<ColumnRegion>> {
        let Some(c) = self.entry(name) else {
            return Ok(None);
        };
        let data = decompress(self.region_bytes(c)?)?;
        if data.len() as u64 != c.raw_len {
            return Err(DjError::Storage(format!(
                "columnar region size mismatch for column `{}`: got {}, expected {}",
                c.name,
                data.len(),
                c.raw_len
            )));
        }
        Ok(Some(ColumnRegion {
            data,
            samples: self.samples,
        }))
    }

    /// Materialize samples from the named columns only (`None` = all).
    ///
    /// Returns the dataset and `bytes_decoded` — the decompressed bytes of
    /// every region that had to be decoded to build it. Columns requested
    /// but absent from the frame are simply missing from the samples, and
    /// frame columns not requested are skipped entirely (their regions are
    /// never decompressed).
    pub fn decode_projected(&self, cols: Option<&BTreeSet<String>>) -> Result<(Dataset, u64)> {
        let mut maps: Vec<BTreeMap<String, Value>> = vec![BTreeMap::new(); self.samples];
        let mut bytes_decoded = 0u64;
        for c in &self.columns {
            if let Some(wanted) = cols {
                if !wanted.contains(&c.name) {
                    continue;
                }
            }
            let region = decompress(self.region_bytes(c)?)?;
            bytes_decoded += c.raw_len;
            let mut cur: &[u8] = &region;
            for map in maps.iter_mut() {
                let present = take_u8(&mut cur)?;
                if present == 1 {
                    map.insert(c.name.clone(), read_value_slice(&mut cur)?);
                } else if present != 0 {
                    return Err(DjError::Storage(format!(
                        "bad presence byte {present} in column `{}`",
                        c.name
                    )));
                }
            }
            if !cur.is_empty() {
                return Err(DjError::Storage(format!(
                    "trailing bytes after column `{}`",
                    c.name
                )));
            }
        }
        let samples = maps
            .into_iter()
            .map(|m| Sample::from_value(Value::Map(m)))
            .collect::<Result<Vec<_>>>()?;
        Ok((Dataset::from_samples(samples), bytes_decoded))
    }

    /// Full decode into an owned dataset.
    pub fn decode(&self) -> Result<Dataset> {
        Ok(self.decode_projected(None)?.0)
    }

    /// Re-encode this frame with `keep`-masked samples, splicing
    /// `decoded`-column data from `processed` and every other column
    /// byte-for-byte from this frame.
    ///
    /// * `processed` holds the *kept* samples (`processed.len()` must equal
    ///   the number of `true`s in `keep`) carrying only decoded/written
    ///   columns;
    /// * `decoded` names the columns that were materialized for the stage
    ///   (`None` = everything was decoded, no passthrough);
    /// * `keep[i]` says whether input sample `i` survived the stage.
    ///
    /// Returns the new frame plus `bytes_passthrough`: decompressed bytes
    /// of passthrough data that crossed input→output without a `Value`
    /// ever being built (whole regions when nothing was dropped, surviving
    /// entries otherwise). A processed sample carrying a column that was
    /// *not* decoded is a field-footprint violation and errors — silent
    /// column collisions must never reach disk.
    pub fn splice(
        &self,
        processed: &Dataset,
        decoded: Option<&BTreeSet<String>>,
        keep: &[bool],
        codec: Codec,
    ) -> Result<(Vec<u8>, u64)> {
        if keep.len() != self.samples {
            return Err(DjError::Storage(format!(
                "splice keep mask covers {} samples, frame has {}",
                keep.len(),
                self.samples
            )));
        }
        let kept = keep.iter().filter(|k| **k).count();
        if processed.len() != kept {
            return Err(DjError::Storage(format!(
                "splice got {} processed samples, keep mask kept {kept}",
                processed.len()
            )));
        }

        let passthrough: Vec<&ColumnEntry> = match decoded {
            None => Vec::new(),
            Some(set) => self
                .columns
                .iter()
                .filter(|c| !set.contains(&c.name))
                .collect(),
        };

        // Columns re-encoded from the processed samples.
        let mut encoded_names: BTreeSet<&str> = BTreeSet::new();
        for s in processed.iter() {
            if let Value::Map(m) = s.value() {
                encoded_names.extend(m.keys().map(String::as_str));
            }
        }
        for c in &passthrough {
            if encoded_names.contains(c.name.as_str()) {
                return Err(DjError::Storage(format!(
                    "field-footprint violation: stage wrote undeclared column `{}`",
                    c.name
                )));
            }
        }

        // (name, compressed region or verbatim range, raw_len, passthrough?)
        enum Region<'a> {
            Verbatim(&'a [u8]),
            Fresh(Vec<u8>),
        }
        let mut out_regions: Vec<(&str, Region<'_>, u64, bool)> = Vec::new();
        let mut bytes_passthrough = 0u64;

        for c in &passthrough {
            if kept == self.samples {
                // Nothing dropped: the compressed region crosses verbatim.
                out_regions.push((
                    &c.name,
                    Region::Verbatim(self.region_bytes(c)?),
                    c.raw_len,
                    true,
                ));
                bytes_passthrough += c.raw_len;
            } else {
                // Entry-level splice: walk presence+value byte ranges and
                // copy surviving entries — no Value is ever materialized.
                let region = decompress(self.region_bytes(c)?)?;
                let mut body = Vec::with_capacity(region.len());
                let mut cur: &[u8] = &region;
                for keep_it in keep {
                    let entry_start = region.len() - cur.len();
                    let present = take_u8(&mut cur)?;
                    if present == 1 {
                        skip_value(&mut cur)?;
                    } else if present != 0 {
                        return Err(DjError::Storage(format!(
                            "bad presence byte {present} in column `{}`",
                            c.name
                        )));
                    }
                    let entry_end = region.len() - cur.len();
                    if *keep_it {
                        body.extend_from_slice(&region[entry_start..entry_end]);
                    }
                }
                if !cur.is_empty() {
                    return Err(DjError::Storage(format!(
                        "trailing bytes after column `{}`",
                        c.name
                    )));
                }
                let raw_len = body.len() as u64;
                bytes_passthrough += raw_len;
                out_regions.push((
                    &c.name,
                    Region::Fresh(compress(&body, codec)),
                    raw_len,
                    true,
                ));
            }
        }

        for name in &encoded_names {
            let mut body = BytesMut::new();
            for s in processed.iter() {
                match s.value() {
                    Value::Map(m) => match m.get(*name) {
                        Some(v) => {
                            body.put_u8(1);
                            write_value(&mut body, v);
                        }
                        None => body.put_u8(0),
                    },
                    _ => body.put_u8(0),
                }
            }
            let raw_len = body.len() as u64;
            out_regions.push((name, Region::Fresh(compress(&body, codec)), raw_len, false));
        }

        // Directory order is sorted by name.
        out_regions.sort_by(|a, b| a.0.cmp(b.0));

        let mut payload = BytesMut::new();
        payload.put_u8(COLUMNAR_VERSION);
        payload.put_u64_le(kept as u64);
        payload.put_u32_le(out_regions.len() as u32);
        let mut offset = 0u64;
        for (name, region, raw_len, _) in &out_regions {
            let bytes: &[u8] = match region {
                Region::Verbatim(b) => b,
                Region::Fresh(v) => v,
            };
            payload.put_u32_le(name.len() as u32);
            payload.put_slice(name.as_bytes());
            payload.put_u64_le(offset);
            payload.put_u64_le(bytes.len() as u64);
            payload.put_u64_le(*raw_len);
            payload.put_u64_le(fnv1a(bytes));
            offset += bytes.len() as u64;
        }
        for (_, region, _, _) in &out_regions {
            let bytes: &[u8] = match region {
                Region::Verbatim(b) => b,
                Region::Fresh(v) => v,
            };
            payload.put_slice(bytes);
        }

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(COLUMNAR_FRAME_MAGIC);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok((out, bytes_passthrough))
    }

    /// Apply a keep mask to *every* column by entry splice — the dedup
    /// barrier's mask-apply pass, which never materializes a `Value`.
    /// Returns the new frame plus the passthrough byte count.
    pub fn filter_frame(&self, keep: &[bool], codec: Codec) -> Result<(Vec<u8>, u64)> {
        // With `decoded = ∅`, every column is passthrough; `processed` is a
        // run of columnless samples standing in for the kept count.
        let nothing_decoded: BTreeSet<String> = BTreeSet::new();
        let kept = keep.iter().filter(|k| **k).count();
        let empties = Dataset::from_samples(
            (0..kept)
                .map(|_| Sample::from_value(Value::Map(BTreeMap::new())))
                .collect::<Result<Vec<_>>>()?,
        );
        self.splice(&empties, Some(&nothing_decoded), keep, codec)
    }
}

/// One decompressed column region, ready for zero-copy text borrowing.
#[derive(Debug)]
pub struct ColumnRegion {
    data: Vec<u8>,
    samples: usize,
}

impl ColumnRegion {
    /// Decompressed size of this region.
    pub fn raw_len(&self) -> u64 {
        self.data.len() as u64
    }

    /// Borrow the text at dotted path `rest` *within* this column for every
    /// sample (`""` = the column value itself). Semantics mirror
    /// [`dj_core::Sample::text_at`]: a missing path, an absent column entry
    /// or a non-string value yields `""`.
    pub fn texts_at(&self, rest: &str) -> Result<Vec<Cow<'_, str>>> {
        let segments: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split('.').collect()
        };
        let mut cur: &[u8] = &self.data;
        let mut out = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let present = take_u8(&mut cur)?;
            match present {
                0 => out.push(Cow::Borrowed("")),
                1 => out.push(walk_path(&mut cur, &segments)?),
                other => {
                    return Err(DjError::Storage(format!("bad presence byte {other}")));
                }
            }
        }
        if !cur.is_empty() {
            return Err(DjError::Storage("trailing bytes after column".into()));
        }
        Ok(out)
    }
}

/// Split a dotted field path into (top-level column, rest-of-path) for
/// column-region access: `"meta.lang"` → `("meta", "lang")`, `"text"` →
/// `("text", "")`.
pub fn split_column_path(field: &str) -> (&str, &str) {
    match field.split_once('.') {
        Some((head, rest)) => (head, rest),
        None => (field, ""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_shard() -> Dataset {
        let mut ds = Dataset::new();
        let mut a = Sample::from_text("hello\nworld \"quoted\"");
        a.set_meta("language", "EN");
        a.set_meta("stars", 42i64);
        a.set_meta("tags", Value::from(vec!["a", "b"]));
        a.set_stat("word_count", 2.0);
        ds.push(a);
        ds.push(Sample::from_text("中文文本 🦀"));
        // A sample with no text at all (missing column) and one with an
        // explicit null — the presence byte must keep them distinct.
        ds.push(Sample::new());
        let mut n = Sample::new();
        n.value_mut().set_path("text", Value::Null).unwrap();
        n.value_mut()
            .set_path(
                "extra.nested.deep",
                Value::from(vec![Value::Int(1), Value::Null]),
            )
            .unwrap();
        ds.push(n);
        ds
    }

    #[test]
    fn roundtrip_all_codecs() {
        for codec in [Codec::None, Codec::Rle, Codec::Djz] {
            for ds in [Dataset::new(), rich_shard()] {
                let frame = encode_columnar_frame(&ds, codec);
                let slab = ColumnarSlab::from_frame_bytes(&frame).unwrap();
                assert_eq!(slab.sample_count(), ds.len());
                assert_eq!(slab.decode().unwrap(), ds, "codec {codec:?}");
            }
        }
    }

    #[test]
    fn projection_decodes_only_named_columns() {
        let ds = rich_shard();
        let frame = encode_columnar_frame(&ds, Codec::Djz);
        let slab = ColumnarSlab::from_frame_bytes(&frame).unwrap();
        assert_eq!(slab.column_names(), vec!["extra", "meta", "stats", "text"]);

        let cols: BTreeSet<String> = ["text".to_string()].into();
        let (projected, bytes) = slab.decode_projected(Some(&cols)).unwrap();
        assert_eq!(bytes, slab.column_raw_len("text").unwrap());
        assert!(bytes < slab.total_raw_len());
        assert_eq!(projected.len(), ds.len());
        for (p, full) in projected.iter().zip(ds.iter()) {
            assert_eq!(p.text(), full.text());
            // Only the text column came along.
            if let Value::Map(m) = p.value() {
                assert!(!m.contains_key("meta"));
                assert!(!m.contains_key("stats"));
            }
        }
        // Full decode accounts for every region.
        let (_, all_bytes) = slab.decode_projected(None).unwrap();
        assert_eq!(all_bytes, slab.total_raw_len());
    }

    #[test]
    fn column_texts_match_text_at() {
        let ds = rich_shard();
        let frame = encode_columnar_frame(&ds, Codec::Djz);
        let slab = ColumnarSlab::from_frame_bytes(&frame).unwrap();
        for field in ["text", "meta.language", "meta.missing", "extra.nested.deep"] {
            let (col, rest) = split_column_path(field);
            let texts: Vec<String> = match slab.read_column(col).unwrap() {
                Some(region) => region
                    .texts_at(rest)
                    .unwrap()
                    .iter()
                    .map(|c| c.to_string())
                    .collect(),
                None => vec![String::new(); ds.len()],
            };
            let expected: Vec<&str> = ds.iter().map(|s| s.text_at(field)).collect();
            assert_eq!(texts, expected, "field {field}");
        }
        assert!(slab.read_column("no_such_column").unwrap().is_none());
    }

    #[test]
    fn splice_passes_untouched_columns_verbatim() {
        let ds = rich_shard();
        let frame = encode_columnar_frame(&ds, Codec::Djz);
        let slab = ColumnarSlab::from_frame_bytes(&frame).unwrap();

        // Decode only `text`, uppercase it, keep all samples.
        let cols: BTreeSet<String> = ["text".to_string()].into();
        let (mut projected, _) = slab.decode_projected(Some(&cols)).unwrap();
        for s in projected.samples_mut() {
            let up = s.text().to_uppercase();
            if !up.is_empty() {
                s.set_text(up);
            }
        }
        let keep = vec![true; ds.len()];
        let (out_frame, passthrough) = slab
            .splice(&projected, Some(&cols), &keep, Codec::Djz)
            .unwrap();
        // Everything except the text region crossed without decode.
        assert_eq!(
            passthrough,
            slab.total_raw_len() - slab.column_raw_len("text").unwrap()
        );

        let out = ColumnarSlab::from_frame_bytes(&out_frame).unwrap();
        let decoded = out.decode().unwrap();
        assert_eq!(decoded.len(), ds.len());
        for (got, orig) in decoded.iter().zip(ds.iter()) {
            let up = orig.text().to_uppercase();
            if !up.is_empty() {
                assert_eq!(got.text(), up);
            }
            // Metadata survived byte-for-byte.
            assert_eq!(got.value().get_path("meta"), orig.value().get_path("meta"));
            assert_eq!(
                got.value().get_path("extra"),
                orig.value().get_path("extra")
            );
        }
    }

    #[test]
    fn splice_with_drops_keeps_surviving_entries() {
        let ds = rich_shard();
        let frame = encode_columnar_frame(&ds, Codec::Djz);
        let slab = ColumnarSlab::from_frame_bytes(&frame).unwrap();
        let keep = vec![true, false, true, false];

        let cols: BTreeSet<String> = ["text".to_string()].into();
        let (projected, _) = slab.decode_projected(Some(&cols)).unwrap();
        let kept_proj = Dataset::from_samples(
            projected
                .iter()
                .zip(&keep)
                .filter(|(_, k)| **k)
                .map(|(s, _)| s.clone())
                .collect(),
        );
        let (out_frame, _) = slab
            .splice(&kept_proj, Some(&cols), &keep, Codec::Djz)
            .unwrap();
        let out = ColumnarSlab::from_frame_bytes(&out_frame)
            .unwrap()
            .decode()
            .unwrap();
        let expected = Dataset::from_samples(
            ds.iter()
                .zip(&keep)
                .filter(|(_, k)| **k)
                .map(|(s, _)| s.clone())
                .collect(),
        );
        assert_eq!(out, expected);
    }

    #[test]
    fn filter_frame_masks_without_decoding() {
        let ds = rich_shard();
        let frame = encode_columnar_frame(&ds, Codec::Djz);
        let slab = ColumnarSlab::from_frame_bytes(&frame).unwrap();
        let keep = vec![false, true, true, false];
        let (out_frame, passthrough) = slab.filter_frame(&keep, Codec::Djz).unwrap();
        assert!(passthrough > 0);
        let out = ColumnarSlab::from_frame_bytes(&out_frame)
            .unwrap()
            .decode()
            .unwrap();
        let expected = Dataset::from_samples(
            ds.iter()
                .zip(&keep)
                .filter(|(_, k)| **k)
                .map(|(s, _)| s.clone())
                .collect(),
        );
        assert_eq!(out, expected);
    }

    #[test]
    fn footprint_violation_is_rejected() {
        let ds = rich_shard();
        let frame = encode_columnar_frame(&ds, Codec::None);
        let slab = ColumnarSlab::from_frame_bytes(&frame).unwrap();
        // Stage claimed to decode only `text` but wrote `meta`.
        let cols: BTreeSet<String> = ["text".to_string()].into();
        let mut bad = Sample::from_text("x");
        bad.set_meta("smuggled", 1i64);
        let processed = Dataset::from_samples(vec![bad]);
        let keep = vec![true, false, false, false];
        let err = slab
            .splice(&processed, Some(&cols), &keep, Codec::None)
            .unwrap_err();
        assert!(err.to_string().contains("footprint"), "{err}");
    }

    #[test]
    fn corruption_is_detected() {
        let ds = rich_shard();
        let frame = encode_columnar_frame(&ds, Codec::Djz);
        // Envelope checksum.
        let mut flipped = frame.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(ColumnarSlab::from_frame_bytes(&flipped).is_err());
        // Truncation at several prefixes.
        for cut in [0, 3, HEADER_LEN - 1, HEADER_LEN + 4, frame.len() - 2] {
            assert!(
                ColumnarSlab::from_frame_bytes(&frame[..cut]).is_err(),
                "cut={cut}"
            );
        }
        // Trailing bytes.
        let mut extra = frame.clone();
        extra.push(0);
        assert!(ColumnarSlab::from_frame_bytes(&extra).is_err());
        // Bad magic.
        let mut bad = frame.clone();
        bad[0] = b'X';
        assert!(ColumnarSlab::from_frame_bytes(&bad).is_err());
        // Per-region corruption: flip a payload byte but fix the envelope
        // checksum so only the region checksum can catch it.
        let mut region_flip = frame.clone();
        let last = region_flip.len() - 1;
        region_flip[last] ^= 0x01;
        let body_checksum = fnv1a(&region_flip[HEADER_LEN..]);
        region_flip[12..20].copy_from_slice(&body_checksum.to_le_bytes());
        let slab = ColumnarSlab::from_frame_bytes(&region_flip).unwrap();
        assert!(slab.decode().is_err());
        assert!(ColumnarSlab::load("/no/such/columnar-frame").is_err());
    }

    #[test]
    fn split_column_path_examples() {
        assert_eq!(split_column_path("text"), ("text", ""));
        assert_eq!(split_column_path("meta.lang"), ("meta", "lang"));
        assert_eq!(split_column_path("a.b.c"), ("a", "b.c"));
    }
}
