//! Checksummed planner-stats sidecar (`DJCS`) — the on-disk memory of the
//! adaptive planner.
//!
//! The executor measures per-op cost (ns/sample) and selectivity
//! (keep ratio) on every run; `dj-exec`'s `CostModel` folds those
//! observations into EWMA aggregates and persists them here, under the
//! cache root (or an explicit stats dir), so the *next* run can plan from
//! measurements instead of the static `OpCost` table.
//!
//! ## On-disk format (version 1)
//!
//! ```text
//! magic    b"DJCS"                      4 bytes
//! version  u16 LE                       2 bytes
//! op_count u32 LE
//! per op:
//!   name_len u16 LE, name utf8 bytes
//!   ns_per_sample f64 LE   (EWMA)
//!   keep_ratio    f64 LE   (EWMA, samples_out / samples_in)
//!   samples       u64 LE   (total samples observed)
//!   runs          u64 LE   (number of runs folded in)
//! tunable_count u32 LE
//! per tunable:
//!   name_len u16 LE, name utf8 bytes
//!   value    f64 LE
//! checksum u64 LE — FNV-1a over every preceding byte
//! ```
//!
//! A sidecar is *advisory*: a missing, truncated, version-skewed, or
//! checksum-failing file decodes to `None` and the planner simply starts
//! cold. Corruption can never fail a run. Writes are atomic
//! (temp file + rename) so a killed run leaves either the old sidecar or
//! the new one, never a torn file.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use dj_core::{DjError, Result};
use dj_hash::fnv1a;

/// Magic prefix of a planner-stats sidecar file.
pub const STATS_SIDECAR_MAGIC: &[u8; 4] = b"DJCS";
/// Current sidecar format version.
pub const STATS_SIDECAR_VERSION: u16 = 1;
/// Default sidecar file name under a cache/stats root.
pub const STATS_SIDECAR_FILE: &str = "planner_stats.djcs";

/// EWMA aggregate for one plan step (keyed by step name, e.g.
/// `"text_length_filter"` or `"fused(word_num_filter+stopwords_filter)"`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpAggregate {
    /// Smoothed per-sample cost in nanoseconds.
    pub ns_per_sample: f64,
    /// Smoothed keep ratio in `[0, 1]` (1.0 = drops nothing).
    pub keep_ratio: f64,
    /// Total samples folded into the aggregate.
    pub samples: u64,
    /// Number of runs folded into the aggregate.
    pub runs: u64,
}

/// The decoded sidecar: per-op aggregates plus scalar tunables
/// (e.g. measured `samples_per_sec` used to auto-size shards).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSidecar {
    pub ops: BTreeMap<String, OpAggregate>,
    pub tunables: BTreeMap<String, f64>,
}

impl StatsSidecar {
    pub fn new() -> StatsSidecar {
        StatsSidecar::default()
    }

    /// Encode to the checksummed `DJCS` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.ops.len() * 48);
        buf.extend_from_slice(STATS_SIDECAR_MAGIC);
        buf.extend_from_slice(&STATS_SIDECAR_VERSION.to_le_bytes());
        buf.extend_from_slice(&(self.ops.len() as u32).to_le_bytes());
        for (name, agg) in &self.ops {
            push_str(&mut buf, name);
            buf.extend_from_slice(&agg.ns_per_sample.to_le_bytes());
            buf.extend_from_slice(&agg.keep_ratio.to_le_bytes());
            buf.extend_from_slice(&agg.samples.to_le_bytes());
            buf.extend_from_slice(&agg.runs.to_le_bytes());
        }
        buf.extend_from_slice(&(self.tunables.len() as u32).to_le_bytes());
        for (name, value) in &self.tunables {
            push_str(&mut buf, name);
            buf.extend_from_slice(&value.to_le_bytes());
        }
        let checksum = fnv1a(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        buf
    }

    /// Decode a `DJCS` byte buffer. Returns `None` on any structural
    /// problem — wrong magic, version skew, truncation, trailing garbage,
    /// or checksum mismatch — because a sidecar is advisory state.
    pub fn from_bytes(bytes: &[u8]) -> Option<StatsSidecar> {
        if bytes.len() < STATS_SIDECAR_MAGIC.len() + 2 + 8 {
            return None;
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().ok()?);
        if fnv1a(body) != stored {
            return None;
        }
        let mut cur = Cursor { buf: body, pos: 0 };
        if cur.take(4)? != &STATS_SIDECAR_MAGIC[..] {
            return None;
        }
        if u16::from_le_bytes(cur.take(2)?.try_into().ok()?) != STATS_SIDECAR_VERSION {
            return None;
        }
        let op_count = u32::from_le_bytes(cur.take(4)?.try_into().ok()?) as usize;
        let mut ops = BTreeMap::new();
        for _ in 0..op_count {
            let name = cur.take_str()?;
            let ns_per_sample = cur.take_f64()?;
            let keep_ratio = cur.take_f64()?;
            let samples = cur.take_u64()?;
            let runs = cur.take_u64()?;
            ops.insert(
                name,
                OpAggregate {
                    ns_per_sample,
                    keep_ratio,
                    samples,
                    runs,
                },
            );
        }
        let tunable_count = u32::from_le_bytes(cur.take(4)?.try_into().ok()?) as usize;
        let mut tunables = BTreeMap::new();
        for _ in 0..tunable_count {
            let name = cur.take_str()?;
            let value = cur.take_f64()?;
            tunables.insert(name, value);
        }
        if cur.pos != body.len() {
            return None; // trailing garbage
        }
        Some(StatsSidecar { ops, tunables })
    }

    /// Read a sidecar file; `None` when missing or invalid in any way.
    /// The sidecar is advisory, so an injected fault here degrades to
    /// "no sidecar" (fresh stats) rather than an error — except `panic`,
    /// which propagates to exercise the recovery paths.
    pub fn read(path: &Path) -> Option<StatsSidecar> {
        let mut bytes = fs::read(path).ok()?;
        if dj_core::faults::corrupt("store.sidecar.load", &mut bytes).is_err() {
            return None;
        }
        StatsSidecar::from_bytes(&bytes)
    }

    /// Atomically write the sidecar (temp file + rename in the target dir).
    ///
    /// The temp name is unique per process *and* per write: concurrent
    /// writers (service-runtime jobs sharing one stats dir, or separate
    /// processes) each stage into their own file, so one writer can never
    /// truncate or rename a half-written file staged by another. The
    /// rename still races — last writer wins the *content* — but every
    /// outcome is one complete, checksum-valid sidecar.
    pub fn write(&self, path: &Path) -> Result<()> {
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = path.parent().unwrap_or_else(|| Path::new("."));
        fs::create_dir_all(dir)
            .map_err(|e| DjError::Storage(format!("create stats dir {}: {e}", dir.display())))?;
        let tmp = path.with_extension(format!(
            "djcs.tmp.{}.{}",
            std::process::id(),
            WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        {
            let mut bytes = self.to_bytes();
            // Corrupted saves are caught by the checksummed decode on the
            // next load, which falls back to fresh stats.
            dj_core::faults::corrupt("store.sidecar.save", &mut bytes)?;
            let mut f = fs::File::create(&tmp)
                .map_err(|e| DjError::Storage(format!("create {}: {e}", tmp.display())))?;
            f.write_all(&bytes)
                .map_err(|e| DjError::Storage(format!("write {}: {e}", tmp.display())))?;
            f.sync_all().ok();
        }
        fs::rename(&tmp, path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            DjError::Storage(format!("rename {}: {e}", path.display()))
        })
    }
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    buf.extend_from_slice(&(len as u16).to_le_bytes());
    buf.extend_from_slice(&bytes[..len]);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn take_u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn take_f64(&mut self) -> Option<f64> {
        Some(f64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn take_str(&mut self) -> Option<String> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().ok()?) as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sidecar() -> StatsSidecar {
        let mut s = StatsSidecar::new();
        s.ops.insert(
            "text_length_filter".into(),
            OpAggregate {
                ns_per_sample: 120.5,
                keep_ratio: 0.4,
                samples: 10_000,
                runs: 3,
            },
        );
        s.ops.insert(
            "fused(word_num_filter+stopwords_filter)".into(),
            OpAggregate {
                ns_per_sample: 8_400.0,
                keep_ratio: 0.97,
                samples: 4_000,
                runs: 3,
            },
        );
        s.tunables.insert("samples_per_sec".into(), 35_000.0);
        s
    }

    #[test]
    fn roundtrips_bytes() {
        let s = sample_sidecar();
        let decoded = StatsSidecar::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn roundtrips_empty() {
        let s = StatsSidecar::new();
        assert_eq!(StatsSidecar::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn rejects_corruption_everywhere() {
        let bytes = sample_sidecar().to_bytes();
        // Flip every single byte: decode must fail (checksum) or at minimum
        // never panic.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x5a;
            assert!(
                StatsSidecar::from_bytes(&bad).is_none(),
                "byte {i} flip survived decode"
            );
        }
        // Truncations at every length.
        for n in 0..bytes.len() {
            assert!(StatsSidecar::from_bytes(&bytes[..n]).is_none());
        }
        // Trailing garbage (re-checksummed) is rejected too.
        let mut long = sample_sidecar().to_bytes();
        long.truncate(long.len() - 8);
        long.push(0);
        let sum = fnv1a(&long);
        long.extend_from_slice(&sum.to_le_bytes());
        assert!(StatsSidecar::from_bytes(&long).is_none());
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = sample_sidecar().to_bytes();
        bytes.truncate(bytes.len() - 8);
        bytes[4] = 99; // version lo byte
        let sum = fnv1a(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert!(StatsSidecar::from_bytes(&bytes).is_none());
    }

    #[test]
    fn concurrent_writers_always_leave_a_valid_sidecar() {
        let dir = std::env::temp_dir().join(format!("djcs-race-{}", std::process::id()));
        let path = dir.join(STATS_SIDECAR_FILE);
        let _ = std::fs::remove_dir_all(&dir);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let path = path.clone();
                scope.spawn(move || {
                    for w in 0..10u64 {
                        let mut s = StatsSidecar::new();
                        s.tunables.insert("writer".into(), (t * 100 + w) as f64);
                        s.write(&path).unwrap();
                        // Every interleaving must read back complete and
                        // checksum-valid (some writer's content, never torn).
                        assert!(StatsSidecar::read(&path).is_some());
                    }
                });
            }
        });
        // No staged temp files may outlive the writers.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "leaked temp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_roundtrip_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("djcs-test-{}", std::process::id()));
        let path = dir.join(STATS_SIDECAR_FILE);
        assert!(StatsSidecar::read(&path).is_none());
        let s = sample_sidecar();
        s.write(&path).unwrap();
        assert_eq!(StatsSidecar::read(&path).unwrap(), s);
        // Corrupt file on disk → read yields None, not an error.
        std::fs::write(&path, b"DJCSgarbage").unwrap();
        assert!(StatsSidecar::read(&path).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
