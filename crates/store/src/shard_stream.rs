//! Streaming shard frames: the on-disk format of the out-of-core executor.
//!
//! A *shard frame* wraps one serialized (and codec-compressed) shard so it
//! can be appended to a byte stream and read back with integrity checking:
//!
//! ```text
//! ┌──────────┬──────────────┬──────────────┬─────────────────────┐
//! │ "DJSF"   │ payload_len  │ checksum     │ payload             │
//! │ 4 bytes  │ u64 LE       │ u64 LE (FNV) │ compress(to_bytes)  │
//! └──────────┴──────────────┴──────────────┴─────────────────────┘
//! ```
//!
//! The length prefix makes frames skippable, the checksum detects bit rot
//! and torn writes, and the payload reuses the self-describing [`Codec`]
//! frame so a stream can mix codecs. Truncated or corrupted frames are
//! reported as clean [`DjError::Storage`] errors — never a panic, never
//! silently short data.
//!
//! Two consumers build on the format:
//!
//! * [`ShardStreamWriter`]/[`ShardStreamReader`] — many frames appended to
//!   one stream (used by the cache manager to persist spilled stages
//!   without materializing them);
//! * [`ShardSpool`] — a directory with one frame file per shard, the
//!   disk backing of the executor's spill path. Files are written to a
//!   temporary name and atomically renamed, so a reader (or a restarted
//!   run) never observes a partial frame. The spool removes its directory
//!   on drop.

use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use dj_core::{Dataset, DjError, Result, ShardSink, ShardSource, Value};
use dj_hash::fnv1a;

use crate::codec::{compress, decompress, Codec};
use crate::columnar::{
    decode_columnar_payload, encode_columnar_frame, ColumnarSlab, COLUMNAR_FRAME_MAGIC,
};
use crate::serialize::{
    from_bytes, le_u64, sample_count, texts_at, to_bytes, values_from_bytes, values_to_bytes,
};

/// Magic prefix of every shard frame (and of multi-frame stream files).
pub const SHARD_FRAME_MAGIC: &[u8; 4] = b"DJSF";

/// Magic prefix of fingerprint sidecar files (`shard-N.fpr`).
pub const FINGERPRINT_MAGIC: &[u8; 4] = b"DJFP";

pub(crate) const HEADER_LEN: usize = 4 + 8 + 8;

/// Refuse to allocate for frames claiming more than this (corrupt length
/// prefixes must not turn into huge allocations).
pub(crate) const MAX_FRAME_PAYLOAD: u64 = 1 << 40;

/// Encode one shard into a self-contained frame.
pub fn encode_shard_frame(shard: &Dataset, codec: Codec) -> Vec<u8> {
    let payload = compress(&to_bytes(shard), codec);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(SHARD_FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Append one shard frame to a writer; returns the bytes written.
pub fn write_shard_frame<W: Write>(w: &mut W, shard: &Dataset, codec: Codec) -> Result<u64> {
    let frame = encode_shard_frame(shard, codec);
    w.write_all(&frame)?;
    Ok(frame.len() as u64)
}

/// Read the next shard frame from a reader — row (`DJSF`) or columnar
/// (`DJSC`), sniffed from the magic; both share the same envelope shape.
///
/// Returns `Ok(None)` on a clean end-of-stream (EOF exactly at a frame
/// boundary). A frame cut off mid-header or mid-payload, a bad magic, an
/// implausible length, or a checksum mismatch all yield a descriptive
/// [`DjError::Storage`].
pub fn read_shard_frame<R: Read>(r: &mut R) -> Result<Option<Dataset>> {
    let mut header = [0u8; HEADER_LEN];
    let got = read_up_to(r, &mut header)?;
    if got == 0 {
        return Ok(None);
    }
    if got < HEADER_LEN {
        return Err(DjError::Storage(format!(
            "truncated shard frame header ({got} of {HEADER_LEN} bytes)"
        )));
    }
    let columnar = if &header[..4] == SHARD_FRAME_MAGIC {
        false
    } else if &header[..4] == COLUMNAR_FRAME_MAGIC {
        true
    } else {
        return Err(DjError::Storage("bad shard frame magic".into()));
    };
    let len = le_u64(&header[4..12]);
    if len > MAX_FRAME_PAYLOAD {
        return Err(DjError::Storage(format!(
            "implausible shard frame length {len}"
        )));
    }
    let checksum = le_u64(&header[12..20]);
    let mut payload = vec![0u8; len as usize];
    let got = read_up_to(r, &mut payload)?;
    if got < payload.len() {
        return Err(DjError::Storage(format!(
            "truncated shard frame payload ({got} of {len} bytes)"
        )));
    }
    if fnv1a(&payload) != checksum {
        return Err(DjError::Storage(
            "shard frame checksum mismatch (corrupted spill data)".into(),
        ));
    }
    if columnar {
        decode_columnar_payload(&payload).map(Some)
    } else {
        from_bytes(&decompress(&payload)?).map(Some)
    }
}

/// Fill `buf` as far as the reader allows; returns bytes read (< `buf.len()`
/// only at end-of-stream).
fn read_up_to<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

/// Sequentially append shard frames to any writer.
pub struct ShardStreamWriter<W: Write> {
    inner: W,
    codec: Codec,
    frames: u64,
    bytes: u64,
}

impl<W: Write> ShardStreamWriter<W> {
    pub fn new(inner: W, codec: Codec) -> Self {
        ShardStreamWriter {
            inner,
            codec,
            frames: 0,
            bytes: 0,
        }
    }

    pub fn write(&mut self, shard: &Dataset) -> Result<()> {
        self.bytes += write_shard_frame(&mut self.inner, shard, self.codec)?;
        self.frames += 1;
        Ok(())
    }

    pub fn frames(&self) -> u64 {
        self.frames
    }

    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Flush and hand back the underlying writer.
    pub fn finish(mut self) -> Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Sequentially read shard frames from any reader.
pub struct ShardStreamReader<R: Read> {
    inner: R,
}

impl<R: Read> ShardStreamReader<R> {
    pub fn new(inner: R) -> Self {
        ShardStreamReader { inner }
    }

    /// The next shard, or `None` at a clean end-of-stream.
    pub fn next_shard(&mut self) -> Result<Option<Dataset>> {
        read_shard_frame(&mut self.inner)
    }
}

/// Read a whole multi-frame stream into one dataset (frames concatenate in
/// order, mirroring `Dataset::from_shards`).
pub fn read_shard_stream<R: Read>(r: R) -> Result<Dataset> {
    let mut reader = ShardStreamReader::new(r);
    let mut out = Dataset::new();
    while let Some(shard) = reader.next_shard()? {
        out.extend(shard);
    }
    Ok(out)
}

/// Count the frames in a multi-frame stream by walking headers and seeking
/// over payloads — no payload is read or decoded. A final frame whose
/// payload was cut off is still counted; the decode pass reports the
/// truncation when it reaches it.
pub fn count_frames<R: Read + std::io::Seek>(r: &mut R) -> Result<u64> {
    let mut count = 0u64;
    loop {
        let mut header = [0u8; HEADER_LEN];
        let got = read_up_to(r, &mut header)?;
        if got == 0 {
            return Ok(count);
        }
        if got < HEADER_LEN {
            return Err(DjError::Storage(format!(
                "truncated shard frame header ({got} of {HEADER_LEN} bytes)"
            )));
        }
        if &header[..4] != SHARD_FRAME_MAGIC && &header[..4] != COLUMNAR_FRAME_MAGIC {
            return Err(DjError::Storage("bad shard frame magic".into()));
        }
        let len = le_u64(&header[4..12]);
        if len > MAX_FRAME_PAYLOAD {
            return Err(DjError::Storage(format!(
                "implausible shard frame length {len}"
            )));
        }
        r.seek(std::io::SeekFrom::Current(len as i64))?;
        count += 1;
    }
}

/// A loaded-but-undecoded shard frame: the zero-copy spool read path.
///
/// [`FrameSlab::load`] reads a slot file once, verifies its checksum, and
/// decompresses into a single contiguous payload slab. [`FrameSlab::texts_at`]
/// then borrows `Cow<'_, str>` text slices straight out of that slab
/// without constructing `Sample`s — so a dedup hash pass over a spilled
/// shard touches each text byte once and never copies strings the ops
/// won't mutate.
#[derive(Debug)]
pub struct FrameSlab {
    payload: Vec<u8>,
}

impl FrameSlab {
    /// Parse one frame held fully in memory. Rejects trailing bytes —
    /// a slab is exactly one frame (the spool slot-file invariant).
    pub fn from_frame_bytes(frame: &[u8]) -> Result<FrameSlab> {
        if frame.len() < HEADER_LEN {
            return Err(DjError::Storage(format!(
                "truncated shard frame header ({} of {HEADER_LEN} bytes)",
                frame.len()
            )));
        }
        if &frame[..4] != SHARD_FRAME_MAGIC {
            return Err(DjError::Storage("bad shard frame magic".into()));
        }
        let len = le_u64(&frame[4..12]);
        if len > MAX_FRAME_PAYLOAD {
            return Err(DjError::Storage(format!(
                "implausible shard frame length {len}"
            )));
        }
        let checksum = le_u64(&frame[12..20]);
        let body = &frame[HEADER_LEN..];
        if (body.len() as u64) < len {
            return Err(DjError::Storage(format!(
                "truncated shard frame payload ({} of {len} bytes)",
                body.len()
            )));
        }
        if (body.len() as u64) > len {
            return Err(DjError::Storage("trailing bytes after shard frame".into()));
        }
        if fnv1a(body) != checksum {
            return Err(DjError::Storage(
                "shard frame checksum mismatch (corrupted spill data)".into(),
            ));
        }
        Ok(FrameSlab {
            payload: decompress(body)?,
        })
    }

    /// Load a single-frame file (a spool slot) into a slab.
    pub fn load(path: impl AsRef<Path>) -> Result<FrameSlab> {
        let path = path.as_ref();
        let mut bytes = fs::read(path)
            .map_err(|e| DjError::Storage(format!("shard frame missing at {path:?}: {e}")))?;
        dj_core::faults::corrupt("store.frame.read", &mut bytes)?;
        FrameSlab::from_frame_bytes(&bytes)
    }

    /// Decompressed payload size in bytes (the slab's memory footprint).
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Sample count, read from the payload header without decoding.
    pub fn sample_count(&self) -> Result<usize> {
        sample_count(&self.payload)
    }

    /// Borrow the text at dotted path `field` for every sample.
    pub fn texts_at(&self, field: &str) -> Result<Vec<std::borrow::Cow<'_, str>>> {
        texts_at(&self.payload, field)
    }

    /// Full decode into an owned dataset (the copying fallback).
    pub fn decode(&self) -> Result<Dataset> {
        from_bytes(&self.payload)
    }
}

/// A directory of shard frame files: the disk backing of spilled stages.
///
/// Slot `i` lives in `shard-i.djs`, written atomically (temp file + rename)
/// so crashes and concurrent readers never see partial frames. Distinct
/// slots may be written concurrently. The directory and its contents are
/// removed when the spool drops.
pub struct ShardSpool {
    dir: PathBuf,
    codec: Codec,
    /// Write shards as columnar (`DJSC`) frames instead of row frames.
    /// Reads sniff the per-file magic either way, so a resumed or
    /// rehydrated spool can mix formats.
    columnar: bool,
    /// Sample count per written slot (`None` until stored) — the shard
    /// layout metadata the dedup barrier needs to slice its dataset-level
    /// mask back into shards. Grows on demand so streaming ingest can
    /// append slots before the total shard count is known.
    lens: Mutex<Vec<Option<usize>>>,
}

impl ShardSpool {
    /// Create a spool with `slots` shard slots rooted at `dir` (created,
    /// including parents, if missing). Writing past `slots` grows the
    /// spool — pass 0 for a stream of unknown length.
    pub fn create(dir: impl Into<PathBuf>, slots: usize, codec: Codec) -> Result<ShardSpool> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ShardSpool {
            dir,
            codec,
            columnar: false,
            lens: Mutex::new(vec![None; slots]),
        })
    }

    /// Like [`create`](ShardSpool::create), but shards written through
    /// [`write_shard`](ShardSpool::write_shard) are stored as columnar
    /// `DJSC` frames, enabling projection ([`read_columnar_slab`]
    /// (ShardSpool::read_columnar_slab)) and byte-for-byte column splicing
    /// ([`write_frame_bytes`](ShardSpool::write_frame_bytes)).
    pub fn create_columnar(
        dir: impl Into<PathBuf>,
        slots: usize,
        codec: Codec,
    ) -> Result<ShardSpool> {
        let mut spool = ShardSpool::create(dir, slots, codec)?;
        spool.columnar = true;
        Ok(spool)
    }

    /// Whether this spool writes columnar frames.
    pub fn is_columnar(&self) -> bool {
        self.columnar
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn shard_count(&self) -> usize {
        dj_core::sync::lock(&self.lens).len()
    }

    fn slot_path(&self, idx: usize) -> PathBuf {
        self.dir.join(format!("shard-{idx:05}.djs"))
    }

    fn sidecar_path(&self, idx: usize) -> PathBuf {
        self.dir.join(format!("shard-{idx:05}.fpr"))
    }

    /// Serialize `shard` into slot `idx` (atomic: temp file then rename).
    /// Row or columnar frame per the spool's mode.
    pub fn write_shard(&self, idx: usize, shard: &Dataset) -> Result<()> {
        let frame = if self.columnar {
            encode_columnar_frame(shard, self.codec)
        } else {
            encode_shard_frame(shard, self.codec)
        };
        self.write_frame_bytes(idx, &frame, shard.len())
    }

    /// Store a pre-encoded frame (row or columnar — e.g. the output of a
    /// column splice) into slot `idx` atomically, recording `samples` as
    /// the slot's sample count.
    pub fn write_frame_bytes(&self, idx: usize, frame: &[u8], samples: usize) -> Result<()> {
        let path = self.slot_path(idx);
        let tmp = path.with_extension("djs.tmp");
        if dj_core::faults::armed("store.frame.write") {
            // Chaos path: damage the bytes *after* the frame checksum was
            // computed, like real media corruption — the error surfaces
            // at whichever read validates this slot.
            let mut bytes = frame.to_vec();
            dj_core::faults::corrupt("store.frame.write", &mut bytes)?;
            fs::write(&tmp, &bytes)?;
        } else {
            fs::write(&tmp, frame)?;
        }
        fs::rename(&tmp, &path)?;
        let mut lens = dj_core::sync::lock(&self.lens);
        if idx >= lens.len() {
            lens.resize(idx + 1, None);
        }
        lens[idx] = Some(samples);
        Ok(())
    }

    /// Persist per-sample dedup fingerprints for slot `idx` in its sidecar
    /// (`shard-N.fpr`, atomic temp+rename). Fingerprints travel with the
    /// frame so a later dedup barrier can skip its hash pass entirely.
    pub fn write_fingerprints(&self, idx: usize, fingerprints: &[Value]) -> Result<()> {
        let payload = values_to_bytes(fingerprints);
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(FINGERPRINT_MAGIC);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        dj_core::faults::corrupt("store.fpr.write", &mut out)?;
        let path = self.sidecar_path(idx);
        let tmp = path.with_extension("fpr.tmp");
        fs::write(&tmp, out)?;
        fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Read slot `idx`'s fingerprint sidecar. `Ok(None)` when the sidecar
    /// was never written; corruption is a [`DjError::Storage`] error.
    pub fn read_fingerprints(&self, idx: usize) -> Result<Option<Vec<Value>>> {
        let path = self.sidecar_path(idx);
        let mut bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        dj_core::faults::corrupt("store.fpr.read", &mut bytes)?;
        if bytes.len() < HEADER_LEN || &bytes[..4] != FINGERPRINT_MAGIC {
            return Err(DjError::Storage(format!(
                "bad fingerprint sidecar header at {path:?}"
            )));
        }
        let len = le_u64(&bytes[4..12]);
        let checksum = le_u64(&bytes[12..20]);
        let payload = &bytes[HEADER_LEN..];
        if payload.len() as u64 != len {
            return Err(DjError::Storage(format!(
                "fingerprint sidecar length mismatch at {path:?}: got {}, expected {len}",
                payload.len()
            )));
        }
        if fnv1a(payload) != checksum {
            return Err(DjError::Storage(format!(
                "fingerprint sidecar checksum mismatch at {path:?}"
            )));
        }
        values_from_bytes(payload).map(Some)
    }

    /// All fingerprints across all slots, flattened in slot order —
    /// `Ok(None)` unless *every* written slot has a sidecar whose length
    /// matches its shard (a partial set cannot seed a barrier).
    pub fn read_all_fingerprints(&self) -> Result<Option<Vec<Value>>> {
        let mut all = Vec::new();
        for i in 0..self.shard_count() {
            let Some(expected) = self.shard_len(i) else {
                return Ok(None);
            };
            match self.read_fingerprints(i)? {
                Some(fp) if fp.len() == expected => all.extend(fp),
                _ => return Ok(None),
            }
        }
        Ok(Some(all))
    }

    /// Load slot `idx` as an undecoded zero-copy row slab. Errors when the
    /// slot holds a columnar frame — use
    /// [`read_columnar_slab`](ShardSpool::read_columnar_slab) for those.
    pub fn read_frame_slab(&self, idx: usize) -> Result<FrameSlab> {
        FrameSlab::load(self.slot_path(idx))
    }

    /// Load slot `idx` as an undecoded columnar slab.
    pub fn read_columnar_slab(&self, idx: usize) -> Result<ColumnarSlab> {
        ColumnarSlab::load(self.slot_path(idx))
    }

    /// Read slot `idx` back, sniffing the frame format from its magic.
    /// Non-destructive: spilled shards can be re-streamed (the dedup
    /// barrier reads twice — hash pass, mask pass).
    pub fn read_shard(&self, idx: usize) -> Result<Dataset> {
        let path = self.slot_path(idx);
        let mut bytes = fs::read(&path).map_err(|e| {
            DjError::Storage(format!("spilled shard {idx} missing at {path:?}: {e}"))
        })?;
        dj_core::faults::corrupt("store.frame.read", &mut bytes)?;
        // Exactly one frame per slot file (both slab parsers reject
        // trailing bytes).
        if bytes.len() >= 4 && &bytes[..4] == COLUMNAR_FRAME_MAGIC {
            ColumnarSlab::from_frame_bytes(&bytes)?.decode()
        } else {
            FrameSlab::from_frame_bytes(&bytes)?.decode()
        }
    }

    /// Sample count of slot `idx`, if it has been written.
    pub fn shard_len(&self, idx: usize) -> Option<usize> {
        dj_core::sync::lock(&self.lens).get(idx).copied().flatten()
    }

    /// Total samples across all written slots.
    pub fn total_samples(&self) -> usize {
        (0..self.shard_count())
            .filter_map(|i| self.shard_len(i))
            .sum()
    }

    /// Copy slot `idx`'s raw frame bytes into `w` without decoding —
    /// spool slot files and multi-frame stream entries share the same
    /// frame format, so a spool can be persisted by pure concatenation.
    pub fn copy_shard_frame_into(&self, idx: usize, w: &mut dyn Write) -> Result<u64> {
        let path = self.slot_path(idx);
        let mut file = fs::File::open(&path).map_err(|e| {
            DjError::Storage(format!("spilled shard {idx} missing at {path:?}: {e}"))
        })?;
        Ok(std::io::copy(&mut file, w)?)
    }

    /// Bytes currently on disk in this spool.
    pub fn disk_usage(&self) -> u64 {
        (0..self.shard_count())
            .filter_map(|i| fs::metadata(self.slot_path(i)).ok())
            .map(|m| m.len())
            .sum()
    }

    /// Materialize the whole spool back into one in-memory dataset,
    /// preserving shard order.
    pub fn materialize(&self) -> Result<Dataset> {
        let mut out = Dataset::new();
        for i in 0..self.shard_count() {
            out.extend(self.read_shard(i)?);
        }
        Ok(out)
    }
}

impl ShardSource for ShardSpool {
    fn shard_count(&self) -> usize {
        self.shard_count()
    }
    fn load_shard(&self, idx: usize) -> Result<Dataset> {
        self.read_shard(idx)
    }
}

impl ShardSink for ShardSpool {
    fn store_shard(&self, idx: usize, shard: Dataset) -> Result<()> {
        self.write_shard(idx, &shard)
    }
}

impl Drop for ShardSpool {
    fn drop(&mut self) {
        // Spill data is transient by definition: leave no temp dirs behind.
        let _ = fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dj_core::Sample;
    use proptest::prelude::*;

    fn tmpdir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dj-shard-stream-{tag}-{}", std::process::id()))
    }

    fn shard(texts: &[&str]) -> Dataset {
        Dataset::from_texts(texts.iter().copied())
    }

    fn rich_shard() -> Dataset {
        let mut ds = Dataset::new();
        let mut s = Sample::from_text("hello\nworld");
        s.set_stat("wc", 2.0);
        s.set_meta("lang", "en");
        ds.push(s);
        ds.push(Sample::from_text("数据处理系统 — out-of-core 実行"));
        ds
    }

    #[test]
    fn frame_roundtrip_all_codecs() {
        for codec in [Codec::None, Codec::Rle, Codec::Djz] {
            for ds in [Dataset::new(), shard(&["a", "b"]), rich_shard()] {
                let frame = encode_shard_frame(&ds, codec);
                let back = read_shard_frame(&mut frame.as_slice()).unwrap().unwrap();
                assert_eq!(back, ds, "codec {codec:?}");
            }
        }
    }

    #[test]
    fn multi_frame_stream_roundtrips_in_order() {
        let shards = vec![
            shard(&["first", "second"]),
            Dataset::new(), // empty shard mid-stream
            rich_shard(),
            shard(&["Ünïcødé ♥ 中文 🦀", ""]),
        ];
        let mut w = ShardStreamWriter::new(Vec::new(), Codec::Djz);
        for s in &shards {
            w.write(s).unwrap();
        }
        assert_eq!(w.frames(), 4);
        let buf = w.finish().unwrap();
        let mut r = ShardStreamReader::new(buf.as_slice());
        for expect in &shards {
            assert_eq!(&r.next_shard().unwrap().unwrap(), expect);
        }
        assert!(r.next_shard().unwrap().is_none());
        // And the concatenating reader matches from_shards.
        let merged = read_shard_stream(buf.as_slice()).unwrap();
        assert_eq!(merged, Dataset::from_shards(shards));
    }

    #[test]
    fn large_shard_spans_many_codec_windows() {
        // Serialized payload far beyond the 64 KiB djz window and any
        // internal buffer size.
        let texts: Vec<String> = (0..4000)
            .map(|i| format!("document {i} with enough body text to add up — padding padding"))
            .collect();
        let big = Dataset::from_texts(texts);
        assert!(
            to_bytes(&big).len() > 128 * 1024,
            "payload must span windows"
        );
        for codec in [Codec::None, Codec::Djz] {
            let frame = encode_shard_frame(&big, codec);
            let back = read_shard_frame(&mut frame.as_slice()).unwrap().unwrap();
            assert_eq!(back, big, "codec {codec:?}");
        }
    }

    #[test]
    fn truncated_frames_error_cleanly() {
        let frame = encode_shard_frame(&rich_shard(), Codec::Djz);
        // Truncation at every prefix length must be a clean Storage error
        // (or clean EOF for the empty prefix), never a panic.
        for cut in [
            0,
            1,
            HEADER_LEN - 1,
            HEADER_LEN,
            HEADER_LEN + 5,
            frame.len() - 1,
        ] {
            let res = read_shard_frame(&mut &frame[..cut]);
            if cut == 0 {
                assert!(matches!(res, Ok(None)), "cut=0 is clean EOF");
            } else {
                let err = res.unwrap_err();
                assert!(matches!(err, DjError::Storage(_)), "cut={cut} gave {err:?}");
            }
        }
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut frame = encode_shard_frame(&shard(&["corruption target"]), Codec::None);
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        let err = read_shard_frame(&mut frame.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // Bad magic likewise.
        let mut bad = encode_shard_frame(&shard(&["x"]), Codec::None);
        bad[0] = b'X';
        assert!(read_shard_frame(&mut bad.as_slice()).is_err());
    }

    #[test]
    fn implausible_length_rejected_without_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(SHARD_FRAME_MAGIC);
        frame.extend_from_slice(&u64::MAX.to_le_bytes());
        frame.extend_from_slice(&0u64.to_le_bytes());
        let err = read_shard_frame(&mut frame.as_slice()).unwrap_err();
        assert!(err.to_string().contains("implausible"), "{err}");
    }

    #[test]
    fn spool_write_read_and_cleanup_on_drop() {
        let dir = tmpdir("spool");
        let shards = vec![shard(&["a", "b", "c"]), Dataset::new(), rich_shard()];
        {
            let spool = ShardSpool::create(&dir, 3, Codec::Djz).unwrap();
            for (i, s) in shards.iter().enumerate() {
                spool.write_shard(i, s).unwrap();
            }
            assert_eq!(spool.shard_len(0), Some(3));
            assert_eq!(spool.shard_len(1), Some(0));
            assert_eq!(spool.total_samples(), 5);
            assert!(spool.disk_usage() > 0);
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(&spool.read_shard(i).unwrap(), s);
            }
            assert_eq!(spool.materialize().unwrap(), Dataset::from_shards(shards));
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "spool must remove its dir on drop");
    }

    #[test]
    fn spool_detects_truncation_and_missing_shards() {
        let dir = tmpdir("spool-corrupt");
        let spool = ShardSpool::create(&dir, 2, Codec::Djz).unwrap();
        spool.write_shard(0, &rich_shard()).unwrap();
        // Truncate the file as a mid-write kill would (without the atomic
        // rename protection).
        let path = dir.join("shard-00000.djs");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = spool.read_shard(0).unwrap_err();
        assert!(matches!(err, DjError::Storage(_)), "{err}");
        // Slot 1 was never written.
        let err = spool.read_shard(1).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
    }

    #[test]
    fn spool_leftover_tmp_file_is_invisible_to_readers() {
        // A kill between `fs::write(tmp)` and `fs::rename` leaves only a
        // `.tmp` file; the slot then correctly reads as missing, and a
        // rewrite replaces it atomically.
        let dir = tmpdir("spool-tmp");
        let spool = ShardSpool::create(&dir, 1, Codec::Djz).unwrap();
        fs::write(
            dir.join("shard-00000.djs.tmp"),
            b"partial frame from a killed run",
        )
        .unwrap();
        assert!(spool.read_shard(0).is_err());
        spool.write_shard(0, &shard(&["recovered"])).unwrap();
        assert_eq!(spool.read_shard(0).unwrap(), shard(&["recovered"]));
    }

    #[test]
    fn spool_grows_past_initial_slots() {
        let dir = tmpdir("spool-grow");
        let spool = ShardSpool::create(&dir, 0, Codec::Djz).unwrap();
        assert_eq!(spool.shard_count(), 0);
        spool.write_shard(0, &shard(&["a"])).unwrap();
        spool.write_shard(2, &rich_shard()).unwrap();
        assert_eq!(spool.shard_count(), 3);
        assert_eq!(spool.shard_len(0), Some(1));
        assert_eq!(spool.shard_len(1), None);
        assert_eq!(spool.shard_len(2), Some(2));
        spool.write_shard(1, &Dataset::new()).unwrap();
        assert_eq!(spool.total_samples(), 3);
    }

    #[test]
    fn fingerprint_sidecars_roundtrip_and_gate_on_completeness() {
        let dir = tmpdir("spool-fpr");
        let spool = ShardSpool::create(&dir, 2, Codec::Djz).unwrap();
        spool.write_shard(0, &shard(&["a", "b"])).unwrap();
        spool.write_shard(1, &shard(&["c"])).unwrap();
        let fp0 = vec![Value::Int(7), Value::Str("h".into())];
        let fp1 = vec![Value::from(vec![Value::Int(1), Value::Int(2)])];
        spool.write_fingerprints(0, &fp0).unwrap();
        // One sidecar missing → no flattened set.
        assert!(spool.read_all_fingerprints().unwrap().is_none());
        spool.write_fingerprints(1, &fp1).unwrap();
        assert_eq!(spool.read_fingerprints(0).unwrap(), Some(fp0.clone()));
        let all = spool.read_all_fingerprints().unwrap().unwrap();
        assert_eq!(all, vec![fp0[0].clone(), fp0[1].clone(), fp1[0].clone()]);
        // Length mismatch with its shard disqualifies the whole set.
        spool.write_fingerprints(1, &[]).unwrap();
        assert!(spool.read_all_fingerprints().unwrap().is_none());
        // Corruption is a Storage error, not a silent miss.
        let path = dir.join("shard-00000.fpr");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(spool.read_fingerprints(0).is_err());
    }

    #[test]
    fn columnar_spool_roundtrips_and_streams() {
        let dir = tmpdir("spool-columnar");
        let shards = vec![shard(&["a", "b", "c"]), Dataset::new(), rich_shard()];
        let spool = ShardSpool::create_columnar(&dir, 3, Codec::Djz).unwrap();
        assert!(spool.is_columnar());
        for (i, s) in shards.iter().enumerate() {
            spool.write_shard(i, s).unwrap();
        }
        // read_shard sniffs DJSC and decodes whole samples.
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(&spool.read_shard(i).unwrap(), s);
        }
        assert_eq!(
            spool.materialize().unwrap(),
            Dataset::from_shards(shards.clone())
        );
        // The columnar slab path sees the same data.
        let slab = spool.read_columnar_slab(2).unwrap();
        assert_eq!(slab.decode().unwrap(), shards[2]);
        // Row slab loads must refuse columnar slots.
        assert!(spool.read_frame_slab(0).is_err());
        // Raw frame concatenation (the cache save path) stays readable: the
        // multi-frame stream reader sniffs per-frame magic.
        let mut buf = Vec::new();
        for i in 0..3 {
            spool.copy_shard_frame_into(i, &mut buf).unwrap();
        }
        assert_eq!(
            read_shard_stream(buf.as_slice()).unwrap(),
            Dataset::from_shards(shards.clone())
        );
        assert_eq!(count_frames(&mut std::io::Cursor::new(&buf)).unwrap(), 3);
        // A pre-encoded splice output lands like any other write.
        let frame = crate::columnar::encode_columnar_frame(&shards[0], Codec::Djz);
        spool.write_frame_bytes(1, &frame, shards[0].len()).unwrap();
        assert_eq!(spool.read_shard(1).unwrap(), shards[0]);
        assert_eq!(spool.shard_len(1), Some(3));
    }

    #[test]
    fn frame_slab_matches_full_decode() {
        let dir = tmpdir("slab");
        let spool = ShardSpool::create(&dir, 1, Codec::Djz).unwrap();
        let ds = rich_shard();
        spool.write_shard(0, &ds).unwrap();
        let slab = spool.read_frame_slab(0).unwrap();
        assert_eq!(slab.sample_count().unwrap(), ds.len());
        assert!(slab.payload_len() > 0);
        assert_eq!(slab.decode().unwrap(), ds);
        let texts = slab.texts_at("text").unwrap();
        let expected: Vec<&str> = ds.iter().map(|s| s.text()).collect();
        assert_eq!(
            texts.iter().map(|c| c.as_ref()).collect::<Vec<_>>(),
            expected
        );
    }

    #[test]
    fn frame_slab_rejects_corruption_and_trailing_bytes() {
        let frame = encode_shard_frame(&rich_shard(), Codec::None);
        assert!(FrameSlab::from_frame_bytes(&frame).is_ok());
        assert!(FrameSlab::from_frame_bytes(&frame[..frame.len() - 1]).is_err());
        let mut extra = frame.clone();
        extra.push(0);
        let err = FrameSlab::from_frame_bytes(&extra).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
        let mut flipped = frame;
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        let err = FrameSlab::from_frame_bytes(&flipped).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        assert!(FrameSlab::load(tmpdir("no-such-slab")).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Frame encode→decode is the identity for arbitrary (including
        /// unicode-heavy) sample texts under every codec.
        #[test]
        fn prop_frame_roundtrip(
            texts in proptest::collection::vec(".{0,60}", 0..12),
            codec_id in 0u8..3,
        ) {
            let codec = [Codec::None, Codec::Rle, Codec::Djz][codec_id as usize];
            let ds = Dataset::from_texts(texts);
            let frame = encode_shard_frame(&ds, codec);
            let back = read_shard_frame(&mut frame.as_slice()).unwrap().unwrap();
            prop_assert_eq!(back, ds);
        }

        /// Any single corrupted byte in a frame is detected (magic, length,
        /// checksum or payload — corruption never round-trips silently).
        #[test]
        fn prop_single_byte_corruption_detected(
            flip_pos in 0usize..200,
            flip_bit in 0u8..8,
        ) {
            let ds = shard(&["a stable document body for corruption testing 0123456789"]);
            let mut frame = encode_shard_frame(&ds, Codec::None);
            let pos = flip_pos % frame.len();
            frame[pos] ^= 1 << flip_bit;
            match read_shard_frame(&mut frame.as_slice()) {
                Ok(Some(back)) => prop_assert!(back != ds, "corruption at {} slipped through", pos),
                Ok(None) => prop_assert!(false, "corrupt frame read as clean EOF"),
                Err(_) => {} // detected — the expected outcome
            }
        }
    }
}
