//! Streaming shard frames: the on-disk format of the out-of-core executor.
//!
//! A *shard frame* wraps one serialized (and codec-compressed) shard so it
//! can be appended to a byte stream and read back with integrity checking:
//!
//! ```text
//! ┌──────────┬──────────────┬──────────────┬─────────────────────┐
//! │ "DJSF"   │ payload_len  │ checksum     │ payload             │
//! │ 4 bytes  │ u64 LE       │ u64 LE (FNV) │ compress(to_bytes)  │
//! └──────────┴──────────────┴──────────────┴─────────────────────┘
//! ```
//!
//! The length prefix makes frames skippable, the checksum detects bit rot
//! and torn writes, and the payload reuses the self-describing [`Codec`]
//! frame so a stream can mix codecs. Truncated or corrupted frames are
//! reported as clean [`DjError::Storage`] errors — never a panic, never
//! silently short data.
//!
//! Two consumers build on the format:
//!
//! * [`ShardStreamWriter`]/[`ShardStreamReader`] — many frames appended to
//!   one stream (used by the cache manager to persist spilled stages
//!   without materializing them);
//! * [`ShardSpool`] — a directory with one frame file per shard, the
//!   disk backing of the executor's spill path. Files are written to a
//!   temporary name and atomically renamed, so a reader (or a restarted
//!   run) never observes a partial frame. The spool removes its directory
//!   on drop.

use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use dj_core::{Dataset, DjError, Result, ShardSink, ShardSource};

use crate::codec::{compress, decompress, Codec};
use crate::serialize::{from_bytes, to_bytes};

/// Magic prefix of every shard frame (and of multi-frame stream files).
pub const SHARD_FRAME_MAGIC: &[u8; 4] = b"DJSF";

const HEADER_LEN: usize = 4 + 8 + 8;

/// Refuse to allocate for frames claiming more than this (corrupt length
/// prefixes must not turn into huge allocations).
const MAX_FRAME_PAYLOAD: u64 = 1 << 40;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encode one shard into a self-contained frame.
pub fn encode_shard_frame(shard: &Dataset, codec: Codec) -> Vec<u8> {
    let payload = compress(&to_bytes(shard), codec);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(SHARD_FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Append one shard frame to a writer; returns the bytes written.
pub fn write_shard_frame<W: Write>(w: &mut W, shard: &Dataset, codec: Codec) -> Result<u64> {
    let frame = encode_shard_frame(shard, codec);
    w.write_all(&frame)?;
    Ok(frame.len() as u64)
}

/// Read the next shard frame from a reader.
///
/// Returns `Ok(None)` on a clean end-of-stream (EOF exactly at a frame
/// boundary). A frame cut off mid-header or mid-payload, a bad magic, an
/// implausible length, or a checksum mismatch all yield a descriptive
/// [`DjError::Storage`].
pub fn read_shard_frame<R: Read>(r: &mut R) -> Result<Option<Dataset>> {
    let mut header = [0u8; HEADER_LEN];
    let got = read_up_to(r, &mut header)?;
    if got == 0 {
        return Ok(None);
    }
    if got < HEADER_LEN {
        return Err(DjError::Storage(format!(
            "truncated shard frame header ({got} of {HEADER_LEN} bytes)"
        )));
    }
    if &header[..4] != SHARD_FRAME_MAGIC {
        return Err(DjError::Storage("bad shard frame magic".into()));
    }
    let len = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(DjError::Storage(format!(
            "implausible shard frame length {len}"
        )));
    }
    let checksum = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
    let mut payload = vec![0u8; len as usize];
    let got = read_up_to(r, &mut payload)?;
    if got < payload.len() {
        return Err(DjError::Storage(format!(
            "truncated shard frame payload ({got} of {len} bytes)"
        )));
    }
    if fnv1a(&payload) != checksum {
        return Err(DjError::Storage(
            "shard frame checksum mismatch (corrupted spill data)".into(),
        ));
    }
    from_bytes(&decompress(&payload)?).map(Some)
}

/// Fill `buf` as far as the reader allows; returns bytes read (< `buf.len()`
/// only at end-of-stream).
fn read_up_to<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

/// Sequentially append shard frames to any writer.
pub struct ShardStreamWriter<W: Write> {
    inner: W,
    codec: Codec,
    frames: u64,
    bytes: u64,
}

impl<W: Write> ShardStreamWriter<W> {
    pub fn new(inner: W, codec: Codec) -> Self {
        ShardStreamWriter {
            inner,
            codec,
            frames: 0,
            bytes: 0,
        }
    }

    pub fn write(&mut self, shard: &Dataset) -> Result<()> {
        self.bytes += write_shard_frame(&mut self.inner, shard, self.codec)?;
        self.frames += 1;
        Ok(())
    }

    pub fn frames(&self) -> u64 {
        self.frames
    }

    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Flush and hand back the underlying writer.
    pub fn finish(mut self) -> Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Sequentially read shard frames from any reader.
pub struct ShardStreamReader<R: Read> {
    inner: R,
}

impl<R: Read> ShardStreamReader<R> {
    pub fn new(inner: R) -> Self {
        ShardStreamReader { inner }
    }

    /// The next shard, or `None` at a clean end-of-stream.
    pub fn next_shard(&mut self) -> Result<Option<Dataset>> {
        read_shard_frame(&mut self.inner)
    }
}

/// Read a whole multi-frame stream into one dataset (frames concatenate in
/// order, mirroring `Dataset::from_shards`).
pub fn read_shard_stream<R: Read>(r: R) -> Result<Dataset> {
    let mut reader = ShardStreamReader::new(r);
    let mut out = Dataset::new();
    while let Some(shard) = reader.next_shard()? {
        out.extend(shard);
    }
    Ok(out)
}

/// Count the frames in a multi-frame stream by walking headers and seeking
/// over payloads — no payload is read or decoded. A final frame whose
/// payload was cut off is still counted; the decode pass reports the
/// truncation when it reaches it.
pub fn count_frames<R: Read + std::io::Seek>(r: &mut R) -> Result<u64> {
    let mut count = 0u64;
    loop {
        let mut header = [0u8; HEADER_LEN];
        let got = read_up_to(r, &mut header)?;
        if got == 0 {
            return Ok(count);
        }
        if got < HEADER_LEN {
            return Err(DjError::Storage(format!(
                "truncated shard frame header ({got} of {HEADER_LEN} bytes)"
            )));
        }
        if &header[..4] != SHARD_FRAME_MAGIC {
            return Err(DjError::Storage("bad shard frame magic".into()));
        }
        let len = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        if len > MAX_FRAME_PAYLOAD {
            return Err(DjError::Storage(format!(
                "implausible shard frame length {len}"
            )));
        }
        r.seek(std::io::SeekFrom::Current(len as i64))?;
        count += 1;
    }
}

/// A directory of shard frame files: the disk backing of spilled stages.
///
/// Slot `i` lives in `shard-i.djs`, written atomically (temp file + rename)
/// so crashes and concurrent readers never see partial frames. Distinct
/// slots may be written concurrently. The directory and its contents are
/// removed when the spool drops.
pub struct ShardSpool {
    dir: PathBuf,
    codec: Codec,
    /// Sample count per written slot (`None` until stored) — the shard
    /// layout metadata the dedup barrier needs to slice its dataset-level
    /// mask back into shards.
    lens: Vec<Mutex<Option<usize>>>,
}

impl ShardSpool {
    /// Create a spool with `slots` shard slots rooted at `dir` (created,
    /// including parents, if missing).
    pub fn create(dir: impl Into<PathBuf>, slots: usize, codec: Codec) -> Result<ShardSpool> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ShardSpool {
            dir,
            codec,
            lens: (0..slots).map(|_| Mutex::new(None)).collect(),
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn shard_count(&self) -> usize {
        self.lens.len()
    }

    fn slot_path(&self, idx: usize) -> PathBuf {
        self.dir.join(format!("shard-{idx:05}.djs"))
    }

    /// Serialize `shard` into slot `idx` (atomic: temp file then rename).
    pub fn write_shard(&self, idx: usize, shard: &Dataset) -> Result<()> {
        let path = self.slot_path(idx);
        let tmp = path.with_extension("djs.tmp");
        fs::write(&tmp, encode_shard_frame(shard, self.codec))?;
        fs::rename(&tmp, &path)?;
        *self.lens[idx].lock().expect("spool len mutex") = Some(shard.len());
        Ok(())
    }

    /// Read slot `idx` back. Non-destructive: spilled shards can be
    /// re-streamed (the dedup barrier reads twice — hash pass, mask pass).
    pub fn read_shard(&self, idx: usize) -> Result<Dataset> {
        let path = self.slot_path(idx);
        let mut file = fs::File::open(&path).map_err(|e| {
            DjError::Storage(format!("spilled shard {idx} missing at {path:?}: {e}"))
        })?;
        let shard = read_shard_frame(&mut file)?
            .ok_or_else(|| DjError::Storage(format!("spilled shard {idx} file is empty")))?;
        // Exactly one frame per slot file.
        let mut trailing = [0u8; 1];
        if read_up_to(&mut file, &mut trailing)? != 0 {
            return Err(DjError::Storage(format!(
                "trailing bytes after spilled shard {idx}"
            )));
        }
        Ok(shard)
    }

    /// Sample count of slot `idx`, if it has been written.
    pub fn shard_len(&self, idx: usize) -> Option<usize> {
        *self.lens[idx].lock().expect("spool len mutex")
    }

    /// Total samples across all written slots.
    pub fn total_samples(&self) -> usize {
        (0..self.shard_count())
            .filter_map(|i| self.shard_len(i))
            .sum()
    }

    /// Copy slot `idx`'s raw frame bytes into `w` without decoding —
    /// spool slot files and multi-frame stream entries share the same
    /// frame format, so a spool can be persisted by pure concatenation.
    pub fn copy_shard_frame_into(&self, idx: usize, w: &mut dyn Write) -> Result<u64> {
        let path = self.slot_path(idx);
        let mut file = fs::File::open(&path).map_err(|e| {
            DjError::Storage(format!("spilled shard {idx} missing at {path:?}: {e}"))
        })?;
        Ok(std::io::copy(&mut file, w)?)
    }

    /// Bytes currently on disk in this spool.
    pub fn disk_usage(&self) -> u64 {
        (0..self.shard_count())
            .filter_map(|i| fs::metadata(self.slot_path(i)).ok())
            .map(|m| m.len())
            .sum()
    }

    /// Materialize the whole spool back into one in-memory dataset,
    /// preserving shard order.
    pub fn materialize(&self) -> Result<Dataset> {
        let mut out = Dataset::new();
        for i in 0..self.shard_count() {
            out.extend(self.read_shard(i)?);
        }
        Ok(out)
    }
}

impl ShardSource for ShardSpool {
    fn shard_count(&self) -> usize {
        self.shard_count()
    }
    fn load_shard(&self, idx: usize) -> Result<Dataset> {
        self.read_shard(idx)
    }
}

impl ShardSink for ShardSpool {
    fn store_shard(&self, idx: usize, shard: Dataset) -> Result<()> {
        self.write_shard(idx, &shard)
    }
}

impl Drop for ShardSpool {
    fn drop(&mut self) {
        // Spill data is transient by definition: leave no temp dirs behind.
        let _ = fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dj_core::Sample;
    use proptest::prelude::*;

    fn tmpdir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dj-shard-stream-{tag}-{}", std::process::id()))
    }

    fn shard(texts: &[&str]) -> Dataset {
        Dataset::from_texts(texts.iter().copied())
    }

    fn rich_shard() -> Dataset {
        let mut ds = Dataset::new();
        let mut s = Sample::from_text("hello\nworld");
        s.set_stat("wc", 2.0);
        s.set_meta("lang", "en");
        ds.push(s);
        ds.push(Sample::from_text("数据处理系统 — out-of-core 実行"));
        ds
    }

    #[test]
    fn frame_roundtrip_all_codecs() {
        for codec in [Codec::None, Codec::Rle, Codec::Djz] {
            for ds in [Dataset::new(), shard(&["a", "b"]), rich_shard()] {
                let frame = encode_shard_frame(&ds, codec);
                let back = read_shard_frame(&mut frame.as_slice()).unwrap().unwrap();
                assert_eq!(back, ds, "codec {codec:?}");
            }
        }
    }

    #[test]
    fn multi_frame_stream_roundtrips_in_order() {
        let shards = vec![
            shard(&["first", "second"]),
            Dataset::new(), // empty shard mid-stream
            rich_shard(),
            shard(&["Ünïcødé ♥ 中文 🦀", ""]),
        ];
        let mut w = ShardStreamWriter::new(Vec::new(), Codec::Djz);
        for s in &shards {
            w.write(s).unwrap();
        }
        assert_eq!(w.frames(), 4);
        let buf = w.finish().unwrap();
        let mut r = ShardStreamReader::new(buf.as_slice());
        for expect in &shards {
            assert_eq!(&r.next_shard().unwrap().unwrap(), expect);
        }
        assert!(r.next_shard().unwrap().is_none());
        // And the concatenating reader matches from_shards.
        let merged = read_shard_stream(buf.as_slice()).unwrap();
        assert_eq!(merged, Dataset::from_shards(shards));
    }

    #[test]
    fn large_shard_spans_many_codec_windows() {
        // Serialized payload far beyond the 64 KiB djz window and any
        // internal buffer size.
        let texts: Vec<String> = (0..4000)
            .map(|i| format!("document {i} with enough body text to add up — padding padding"))
            .collect();
        let big = Dataset::from_texts(texts);
        assert!(
            to_bytes(&big).len() > 128 * 1024,
            "payload must span windows"
        );
        for codec in [Codec::None, Codec::Djz] {
            let frame = encode_shard_frame(&big, codec);
            let back = read_shard_frame(&mut frame.as_slice()).unwrap().unwrap();
            assert_eq!(back, big, "codec {codec:?}");
        }
    }

    #[test]
    fn truncated_frames_error_cleanly() {
        let frame = encode_shard_frame(&rich_shard(), Codec::Djz);
        // Truncation at every prefix length must be a clean Storage error
        // (or clean EOF for the empty prefix), never a panic.
        for cut in [
            0,
            1,
            HEADER_LEN - 1,
            HEADER_LEN,
            HEADER_LEN + 5,
            frame.len() - 1,
        ] {
            let res = read_shard_frame(&mut &frame[..cut]);
            if cut == 0 {
                assert!(matches!(res, Ok(None)), "cut=0 is clean EOF");
            } else {
                let err = res.unwrap_err();
                assert!(matches!(err, DjError::Storage(_)), "cut={cut} gave {err:?}");
            }
        }
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut frame = encode_shard_frame(&shard(&["corruption target"]), Codec::None);
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        let err = read_shard_frame(&mut frame.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // Bad magic likewise.
        let mut bad = encode_shard_frame(&shard(&["x"]), Codec::None);
        bad[0] = b'X';
        assert!(read_shard_frame(&mut bad.as_slice()).is_err());
    }

    #[test]
    fn implausible_length_rejected_without_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(SHARD_FRAME_MAGIC);
        frame.extend_from_slice(&u64::MAX.to_le_bytes());
        frame.extend_from_slice(&0u64.to_le_bytes());
        let err = read_shard_frame(&mut frame.as_slice()).unwrap_err();
        assert!(err.to_string().contains("implausible"), "{err}");
    }

    #[test]
    fn spool_write_read_and_cleanup_on_drop() {
        let dir = tmpdir("spool");
        let shards = vec![shard(&["a", "b", "c"]), Dataset::new(), rich_shard()];
        {
            let spool = ShardSpool::create(&dir, 3, Codec::Djz).unwrap();
            for (i, s) in shards.iter().enumerate() {
                spool.write_shard(i, s).unwrap();
            }
            assert_eq!(spool.shard_len(0), Some(3));
            assert_eq!(spool.shard_len(1), Some(0));
            assert_eq!(spool.total_samples(), 5);
            assert!(spool.disk_usage() > 0);
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(&spool.read_shard(i).unwrap(), s);
            }
            assert_eq!(spool.materialize().unwrap(), Dataset::from_shards(shards));
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "spool must remove its dir on drop");
    }

    #[test]
    fn spool_detects_truncation_and_missing_shards() {
        let dir = tmpdir("spool-corrupt");
        let spool = ShardSpool::create(&dir, 2, Codec::Djz).unwrap();
        spool.write_shard(0, &rich_shard()).unwrap();
        // Truncate the file as a mid-write kill would (without the atomic
        // rename protection).
        let path = dir.join("shard-00000.djs");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = spool.read_shard(0).unwrap_err();
        assert!(matches!(err, DjError::Storage(_)), "{err}");
        // Slot 1 was never written.
        let err = spool.read_shard(1).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
    }

    #[test]
    fn spool_leftover_tmp_file_is_invisible_to_readers() {
        // A kill between `fs::write(tmp)` and `fs::rename` leaves only a
        // `.tmp` file; the slot then correctly reads as missing, and a
        // rewrite replaces it atomically.
        let dir = tmpdir("spool-tmp");
        let spool = ShardSpool::create(&dir, 1, Codec::Djz).unwrap();
        fs::write(
            dir.join("shard-00000.djs.tmp"),
            b"partial frame from a killed run",
        )
        .unwrap();
        assert!(spool.read_shard(0).is_err());
        spool.write_shard(0, &shard(&["recovered"])).unwrap();
        assert_eq!(spool.read_shard(0).unwrap(), shard(&["recovered"]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Frame encode→decode is the identity for arbitrary (including
        /// unicode-heavy) sample texts under every codec.
        #[test]
        fn prop_frame_roundtrip(
            texts in proptest::collection::vec(".{0,60}", 0..12),
            codec_id in 0u8..3,
        ) {
            let codec = [Codec::None, Codec::Rle, Codec::Djz][codec_id as usize];
            let ds = Dataset::from_texts(texts);
            let frame = encode_shard_frame(&ds, codec);
            let back = read_shard_frame(&mut frame.as_slice()).unwrap().unwrap();
            prop_assert_eq!(back, ds);
        }

        /// Any single corrupted byte in a frame is detected (magic, length,
        /// checksum or payload — corruption never round-trips silently).
        #[test]
        fn prop_single_byte_corruption_detected(
            flip_pos in 0usize..200,
            flip_bit in 0u8..8,
        ) {
            let ds = shard(&["a stable document body for corruption testing 0123456789"]);
            let mut frame = encode_shard_frame(&ds, Codec::None);
            let pos = flip_pos % frame.len();
            frame[pos] ^= 1 << flip_bit;
            match read_shard_frame(&mut frame.as_slice()) {
                Ok(Some(back)) => prop_assert!(back != ds, "corruption at {} slipped through", pos),
                Ok(None) => prop_assert!(false, "corrupt frame read as clean EOF"),
                Err(_) => {} // detected — the expected outcome
            }
        }
    }
}
