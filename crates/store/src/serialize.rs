//! Dataset (de)serialization: a compact binary format for cache files and
//! JSONL for interchange (the exporter/importer the paper's pipelines end
//! with).

use std::borrow::Cow;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use dj_core::{parse_json, Dataset, DjError, Result, Sample, Value};

const FORMAT_VERSION: u8 = 1;

/// Serialize a dataset to the binary cache format.
pub fn to_bytes(dataset: &Dataset) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(dataset.approx_bytes() / 2 + 64);
    buf.put_u8(FORMAT_VERSION);
    buf.put_u64_le(dataset.len() as u64);
    for s in dataset.iter() {
        write_value(&mut buf, s.value());
    }
    buf.to_vec()
}

/// Deserialize a dataset from the binary cache format.
pub fn from_bytes(data: &[u8]) -> Result<Dataset> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < 9 {
        return Err(DjError::Storage("dataset frame too short".into()));
    }
    let version = buf.get_u8();
    if version != FORMAT_VERSION {
        return Err(DjError::Storage(format!(
            "unsupported dataset format version {version}"
        )));
    }
    let n = buf.get_u64_le() as usize;
    let mut samples = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let v = read_value(&mut buf)?;
        samples.push(Sample::from_value(v)?);
    }
    if buf.has_remaining() {
        return Err(DjError::Storage("trailing bytes after dataset".into()));
    }
    Ok(Dataset::from_samples(samples))
}

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_LIST: u8 = 6;
const TAG_MAP: u8 = 7;

pub(crate) fn write_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
        Value::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*f);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::List(items) => {
            buf.put_u8(TAG_LIST);
            buf.put_u32_le(items.len() as u32);
            for item in items {
                write_value(buf, item);
            }
        }
        Value::Map(m) => {
            buf.put_u8(TAG_MAP);
            buf.put_u32_le(m.len() as u32);
            for (k, val) in m {
                buf.put_u32_le(k.len() as u32);
                buf.put_slice(k.as_bytes());
                write_value(buf, val);
            }
        }
    }
}

fn read_value(buf: &mut Bytes) -> Result<Value> {
    if !buf.has_remaining() {
        return Err(DjError::Storage("truncated value".into()));
    }
    let tag = buf.get_u8();
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL_FALSE => Value::Bool(false),
        TAG_BOOL_TRUE => Value::Bool(true),
        TAG_INT => {
            ensure(buf, 8)?;
            Value::Int(buf.get_i64_le())
        }
        TAG_FLOAT => {
            ensure(buf, 8)?;
            Value::Float(buf.get_f64_le())
        }
        TAG_STR => Value::Str(read_string(buf)?),
        TAG_LIST => {
            ensure(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(read_value(buf)?);
            }
            Value::List(items)
        }
        TAG_MAP => {
            ensure(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            let mut m = std::collections::BTreeMap::new();
            for _ in 0..n {
                let k = read_string(buf)?;
                let v = read_value(buf)?;
                m.insert(k, v);
            }
            Value::Map(m)
        }
        other => return Err(DjError::Storage(format!("unknown value tag {other}"))),
    })
}

fn read_string(buf: &mut Bytes) -> Result<String> {
    ensure(buf, 4)?;
    let n = buf.get_u32_le() as usize;
    ensure(buf, n)?;
    let bytes = buf.split_to(n);
    String::from_utf8(bytes.to_vec()).map_err(|_| DjError::Storage("invalid utf8 in string".into()))
}

fn ensure(buf: &Bytes, n: usize) -> Result<()> {
    if buf.remaining() < n {
        return Err(DjError::Storage("truncated frame".into()));
    }
    Ok(())
}

/// Serialize a flat list of values (e.g. per-sample dedup fingerprints)
/// in the same tagged binary format as datasets.
pub fn values_to_bytes(values: &[Value]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(values.len() * 16 + 16);
    buf.put_u8(FORMAT_VERSION);
    buf.put_u64_le(values.len() as u64);
    for v in values {
        write_value(&mut buf, v);
    }
    buf.to_vec()
}

/// Deserialize a value list written by [`values_to_bytes`].
pub fn values_from_bytes(data: &[u8]) -> Result<Vec<Value>> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < 9 {
        return Err(DjError::Storage("value frame too short".into()));
    }
    let version = buf.get_u8();
    if version != FORMAT_VERSION {
        return Err(DjError::Storage(format!(
            "unsupported value format version {version}"
        )));
    }
    let n = buf.get_u64_le() as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(read_value(&mut buf)?);
    }
    if buf.has_remaining() {
        return Err(DjError::Storage("trailing bytes after value list".into()));
    }
    Ok(out)
}

/// Sample count of a serialized dataset, read from the header alone.
pub fn sample_count(data: &[u8]) -> Result<usize> {
    if data.len() < 9 {
        return Err(DjError::Storage("dataset frame too short".into()));
    }
    if data[0] != FORMAT_VERSION {
        return Err(DjError::Storage(format!(
            "unsupported dataset format version {}",
            data[0]
        )));
    }
    Ok(le_u64(&data[1..9]) as usize)
}

/// `u64` from the first 8 little-endian bytes of `b`, zero-padded if
/// shorter — every caller bound-checks first, so the pad never shows.
/// (Replaces the `try_into().expect("8 bytes")` idiom: length mistakes
/// here should decode garbage a checksum catches, not panic a worker.)
pub(crate) fn le_u64(b: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = b.len().min(8);
    buf[..n].copy_from_slice(&b[..n]);
    u64::from_le_bytes(buf)
}

/// `u32` twin of [`le_u64`].
pub(crate) fn le_u32(b: &[u8]) -> u32 {
    let mut buf = [0u8; 4];
    let n = b.len().min(4);
    buf[..n].copy_from_slice(&b[..n]);
    u32::from_le_bytes(buf)
}

/// Borrow the text at dotted path `field` out of every sample of a
/// serialized dataset, without decoding samples into owned `Value`s.
///
/// This is the zero-copy read path: the returned `Cow`s point straight
/// into `data` (the decompressed frame slab), so a hash pass over a
/// spilled shard touches each text byte exactly once and allocates
/// nothing per sample. Semantics mirror [`dj_core::Sample::text_at`]:
/// a missing path or a non-string value yields `""`.
pub fn texts_at<'a>(data: &'a [u8], field: &str) -> Result<Vec<Cow<'a, str>>> {
    let mut cur = data;
    let version = take_u8(&mut cur)?;
    if version != FORMAT_VERSION {
        return Err(DjError::Storage(format!(
            "unsupported dataset format version {version}"
        )));
    }
    let n = take_u64(&mut cur)? as usize;
    let segments: Vec<&str> = field.split('.').collect();
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(walk_path(&mut cur, &segments)?);
    }
    if !cur.is_empty() {
        return Err(DjError::Storage("trailing bytes after dataset".into()));
    }
    Ok(out)
}

/// Consume one serialized value, returning the borrowed string at
/// `segments` (or `""` when the path misses / lands on a non-string).
pub(crate) fn walk_path<'a>(cur: &mut &'a [u8], segments: &[&str]) -> Result<Cow<'a, str>> {
    let tag = take_u8(cur)?;
    if segments.is_empty() {
        if tag == TAG_STR {
            return Ok(Cow::Borrowed(take_str(cur)?));
        }
        skip_value_body(cur, tag)?;
        return Ok(Cow::Borrowed(""));
    }
    if tag != TAG_MAP {
        skip_value_body(cur, tag)?;
        return Ok(Cow::Borrowed(""));
    }
    let n = take_u32(cur)? as usize;
    let mut found = Cow::Borrowed("");
    for _ in 0..n {
        let key = take_str(cur)?;
        if key == segments[0] {
            found = walk_path(cur, &segments[1..])?;
        } else {
            skip_value(cur)?;
        }
    }
    Ok(found)
}

pub(crate) fn skip_value(cur: &mut &[u8]) -> Result<()> {
    let tag = take_u8(cur)?;
    skip_value_body(cur, tag)
}

/// Decode one tagged value from a slice cursor (the owned-`Value` twin of
/// [`skip_value`], used by the columnar codec to decode projected column
/// regions without going through `Bytes`).
pub(crate) fn read_value_slice(cur: &mut &[u8]) -> Result<Value> {
    let tag = take_u8(cur)?;
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL_FALSE => Value::Bool(false),
        TAG_BOOL_TRUE => Value::Bool(true),
        TAG_INT => Value::Int(le_u64(take_bytes(cur, 8)?) as i64),
        TAG_FLOAT => Value::Float(f64::from_bits(le_u64(take_bytes(cur, 8)?))),
        TAG_STR => Value::Str(take_str(cur)?.to_string()),
        TAG_LIST => {
            let n = take_u32(cur)? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(read_value_slice(cur)?);
            }
            Value::List(items)
        }
        TAG_MAP => {
            let n = take_u32(cur)? as usize;
            let mut m = std::collections::BTreeMap::new();
            for _ in 0..n {
                let k = take_str(cur)?.to_string();
                let v = read_value_slice(cur)?;
                m.insert(k, v);
            }
            Value::Map(m)
        }
        other => return Err(DjError::Storage(format!("unknown value tag {other}"))),
    })
}

fn skip_value_body(cur: &mut &[u8], tag: u8) -> Result<()> {
    match tag {
        TAG_NULL | TAG_BOOL_FALSE | TAG_BOOL_TRUE => {}
        TAG_INT | TAG_FLOAT => {
            take_bytes(cur, 8)?;
        }
        TAG_STR => {
            let n = take_u32(cur)? as usize;
            take_bytes(cur, n)?;
        }
        TAG_LIST => {
            let n = take_u32(cur)? as usize;
            for _ in 0..n {
                skip_value(cur)?;
            }
        }
        TAG_MAP => {
            let n = take_u32(cur)? as usize;
            for _ in 0..n {
                let k = take_u32(cur)? as usize;
                take_bytes(cur, k)?;
                skip_value(cur)?;
            }
        }
        other => return Err(DjError::Storage(format!("unknown value tag {other}"))),
    }
    Ok(())
}

pub(crate) fn take_bytes<'a>(cur: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if cur.len() < n {
        return Err(DjError::Storage("truncated frame".into()));
    }
    let (head, tail) = cur.split_at(n);
    *cur = tail;
    Ok(head)
}

pub(crate) fn take_u8(cur: &mut &[u8]) -> Result<u8> {
    Ok(take_bytes(cur, 1)?[0])
}

pub(crate) fn take_u32(cur: &mut &[u8]) -> Result<u32> {
    Ok(le_u32(take_bytes(cur, 4)?))
}

pub(crate) fn take_u64(cur: &mut &[u8]) -> Result<u64> {
    Ok(le_u64(take_bytes(cur, 8)?))
}

pub(crate) fn take_str<'a>(cur: &mut &'a [u8]) -> Result<&'a str> {
    let n = take_u32(cur)? as usize;
    std::str::from_utf8(take_bytes(cur, n)?)
        .map_err(|_| DjError::Storage("invalid utf8 in string".into()))
}

/// Export a dataset as JSON-Lines text.
pub fn to_jsonl(dataset: &Dataset) -> String {
    let mut out = String::with_capacity(dataset.approx_bytes());
    write_jsonl_into(dataset, &mut out);
    out
}

/// Append a dataset's JSON-Lines text to `out`, formatting each sample
/// straight into the buffer. Sharded egress writers reuse one buffer across
/// shards, so the hot path allocates nothing per sample (the old path built
/// a fresh escaped `String` per sample via `Value::to_string`).
pub fn write_jsonl_into(dataset: &Dataset, out: &mut String) {
    use std::fmt::Write as _;
    out.reserve(dataset.approx_bytes());
    for s in dataset.iter() {
        // Writing into a String cannot fail.
        let _ = write!(out, "{}", s.value());
        out.push('\n');
    }
}

/// Import a dataset from JSON-Lines text.
pub fn from_jsonl(text: &str) -> Result<Dataset> {
    let mut samples = Vec::new();
    for (no, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v =
            parse_json(line).map_err(|e| DjError::Parse(format!("jsonl line {}: {e}", no + 1)))?;
        samples.push(Sample::from_value(v)?);
    }
    Ok(Dataset::from_samples(samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rich_dataset() -> Dataset {
        let mut ds = Dataset::new();
        let mut s = Sample::from_text("hello\nworld \"quoted\"");
        s.set_meta("language", "EN");
        s.set_meta("stars", 42i64);
        s.set_meta("tags", Value::from(vec!["a", "b"]));
        s.set_stat("word_count", 2.0);
        ds.push(s);
        ds.push(Sample::from_text("中文文本"));
        ds.push(Sample::new());
        ds
    }

    #[test]
    fn binary_roundtrip() {
        let ds = rich_dataset();
        let bytes = to_bytes(&ds);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn jsonl_roundtrip() {
        let ds = rich_dataset();
        let text = to_jsonl(&ds);
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds = Dataset::new();
        assert_eq!(from_bytes(&to_bytes(&ds)).unwrap(), ds);
        assert_eq!(from_jsonl(&to_jsonl(&ds)).unwrap(), ds);
    }

    #[test]
    fn corrupt_binary_rejected() {
        assert!(from_bytes(&[]).is_err());
        assert!(from_bytes(&[9, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        let mut bytes = to_bytes(&rich_dataset());
        bytes.truncate(bytes.len() / 2);
        assert!(from_bytes(&bytes).is_err());
        let mut extra = to_bytes(&rich_dataset());
        extra.push(0);
        assert!(from_bytes(&extra).is_err());
    }

    #[test]
    fn corrupt_jsonl_rejected() {
        assert!(from_jsonl("{\"ok\": 1}\nnot json\n").is_err());
        assert!(from_jsonl("[1, 2, 3]\n").is_err()); // root must be a map
    }

    #[test]
    fn values_roundtrip() {
        let vals = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-7),
            Value::Float(2.5),
            Value::Str("中文 fingerprint".into()),
            Value::from(vec!["a", "b"]),
        ];
        assert_eq!(values_from_bytes(&values_to_bytes(&vals)).unwrap(), vals);
        assert_eq!(
            values_from_bytes(&values_to_bytes(&[])).unwrap(),
            Vec::<Value>::new()
        );
        assert!(values_from_bytes(&[]).is_err());
        let mut bytes = values_to_bytes(&vals);
        bytes.push(0);
        assert!(values_from_bytes(&bytes).is_err());
    }

    #[test]
    fn texts_at_borrows_what_text_at_returns() {
        let mut ds = rich_dataset();
        // A nested text field and a sample where `text` is not a string.
        let mut nested = Sample::new();
        nested
            .value_mut()
            .set_path("content.body", Value::Str("nested body".into()))
            .unwrap();
        ds.push(nested);
        let mut wrong_type = Sample::new();
        wrong_type.set_meta("text", 42i64); // meta writes under "meta.text"
        ds.push(wrong_type);
        let bytes = to_bytes(&ds);
        assert_eq!(sample_count(&bytes).unwrap(), ds.len());
        for field in ["text", "content.body", "meta.text", "missing.path"] {
            let texts = texts_at(&bytes, field).unwrap();
            assert_eq!(texts.len(), ds.len());
            for (cow, sample) in texts.iter().zip(ds.iter()) {
                assert_eq!(cow.as_ref(), sample.text_at(field), "field {field}");
                // Non-empty hits must borrow from the slab, not allocate.
                if !cow.is_empty() {
                    assert!(matches!(cow, Cow::Borrowed(_)));
                }
            }
        }
    }

    #[test]
    fn texts_at_rejects_corrupt_frames() {
        let bytes = to_bytes(&rich_dataset());
        assert!(texts_at(&[], "text").is_err());
        assert!(texts_at(&bytes[..bytes.len() - 2], "text").is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(texts_at(&extra, "text").is_err());
        let mut wrong = bytes;
        wrong[0] = 9;
        assert!(texts_at(&wrong, "text").is_err());
    }

    proptest! {
        #[test]
        fn prop_texts_at_matches_decode(texts in proptest::collection::vec(".{0,40}", 0..16)) {
            let mut ds = Dataset::new();
            for (i, t) in texts.iter().enumerate() {
                let mut s = Sample::from_text(t.clone());
                s.set_meta("idx", i as i64);
                ds.push(s);
            }
            let bytes = to_bytes(&ds);
            let borrowed = texts_at(&bytes, "text").unwrap();
            let expected: Vec<&str> = ds.iter().map(|s| s.text()).collect();
            prop_assert_eq!(
                borrowed.iter().map(|c| c.as_ref()).collect::<Vec<_>>(),
                expected
            );
        }

        #[test]
        fn prop_binary_roundtrip(texts in proptest::collection::vec(".*", 0..20)) {
            let mut ds = Dataset::new();
            for (i, t) in texts.iter().enumerate() {
                let mut s = Sample::from_text(t.clone());
                s.set_stat("idx", i as f64);
                ds.push(s);
            }
            let back = from_bytes(&to_bytes(&ds)).unwrap();
            prop_assert_eq!(back, ds);
        }

        #[test]
        fn prop_jsonl_roundtrip_no_nan(texts in proptest::collection::vec("[a-zA-Z0-9 \\n\"\\\\]{0,60}", 0..10)) {
            let mut ds = Dataset::new();
            for t in &texts {
                ds.push(Sample::from_text(t.clone()));
            }
            let back = from_jsonl(&to_jsonl(&ds)).unwrap();
            prop_assert_eq!(back, ds);
        }
    }
}
