//! Dataset (de)serialization: a compact binary format for cache files and
//! JSONL for interchange (the exporter/importer the paper's pipelines end
//! with).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use dj_core::{parse_json, Dataset, DjError, Result, Sample, Value};

const FORMAT_VERSION: u8 = 1;

/// Serialize a dataset to the binary cache format.
pub fn to_bytes(dataset: &Dataset) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(dataset.approx_bytes() / 2 + 64);
    buf.put_u8(FORMAT_VERSION);
    buf.put_u64_le(dataset.len() as u64);
    for s in dataset.iter() {
        write_value(&mut buf, s.value());
    }
    buf.to_vec()
}

/// Deserialize a dataset from the binary cache format.
pub fn from_bytes(data: &[u8]) -> Result<Dataset> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < 9 {
        return Err(DjError::Storage("dataset frame too short".into()));
    }
    let version = buf.get_u8();
    if version != FORMAT_VERSION {
        return Err(DjError::Storage(format!(
            "unsupported dataset format version {version}"
        )));
    }
    let n = buf.get_u64_le() as usize;
    let mut samples = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let v = read_value(&mut buf)?;
        samples.push(Sample::from_value(v)?);
    }
    if buf.has_remaining() {
        return Err(DjError::Storage("trailing bytes after dataset".into()));
    }
    Ok(Dataset::from_samples(samples))
}

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_LIST: u8 = 6;
const TAG_MAP: u8 = 7;

fn write_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
        Value::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*f);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::List(items) => {
            buf.put_u8(TAG_LIST);
            buf.put_u32_le(items.len() as u32);
            for item in items {
                write_value(buf, item);
            }
        }
        Value::Map(m) => {
            buf.put_u8(TAG_MAP);
            buf.put_u32_le(m.len() as u32);
            for (k, val) in m {
                buf.put_u32_le(k.len() as u32);
                buf.put_slice(k.as_bytes());
                write_value(buf, val);
            }
        }
    }
}

fn read_value(buf: &mut Bytes) -> Result<Value> {
    if !buf.has_remaining() {
        return Err(DjError::Storage("truncated value".into()));
    }
    let tag = buf.get_u8();
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL_FALSE => Value::Bool(false),
        TAG_BOOL_TRUE => Value::Bool(true),
        TAG_INT => {
            ensure(buf, 8)?;
            Value::Int(buf.get_i64_le())
        }
        TAG_FLOAT => {
            ensure(buf, 8)?;
            Value::Float(buf.get_f64_le())
        }
        TAG_STR => Value::Str(read_string(buf)?),
        TAG_LIST => {
            ensure(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(read_value(buf)?);
            }
            Value::List(items)
        }
        TAG_MAP => {
            ensure(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            let mut m = std::collections::BTreeMap::new();
            for _ in 0..n {
                let k = read_string(buf)?;
                let v = read_value(buf)?;
                m.insert(k, v);
            }
            Value::Map(m)
        }
        other => return Err(DjError::Storage(format!("unknown value tag {other}"))),
    })
}

fn read_string(buf: &mut Bytes) -> Result<String> {
    ensure(buf, 4)?;
    let n = buf.get_u32_le() as usize;
    ensure(buf, n)?;
    let bytes = buf.split_to(n);
    String::from_utf8(bytes.to_vec()).map_err(|_| DjError::Storage("invalid utf8 in string".into()))
}

fn ensure(buf: &Bytes, n: usize) -> Result<()> {
    if buf.remaining() < n {
        return Err(DjError::Storage("truncated frame".into()));
    }
    Ok(())
}

/// Export a dataset as JSON-Lines text.
pub fn to_jsonl(dataset: &Dataset) -> String {
    let mut out = String::with_capacity(dataset.approx_bytes());
    for s in dataset.iter() {
        out.push_str(&s.value().to_string());
        out.push('\n');
    }
    out
}

/// Import a dataset from JSON-Lines text.
pub fn from_jsonl(text: &str) -> Result<Dataset> {
    let mut samples = Vec::new();
    for (no, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v =
            parse_json(line).map_err(|e| DjError::Parse(format!("jsonl line {}: {e}", no + 1)))?;
        samples.push(Sample::from_value(v)?);
    }
    Ok(Dataset::from_samples(samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rich_dataset() -> Dataset {
        let mut ds = Dataset::new();
        let mut s = Sample::from_text("hello\nworld \"quoted\"");
        s.set_meta("language", "EN");
        s.set_meta("stars", 42i64);
        s.set_meta("tags", Value::from(vec!["a", "b"]));
        s.set_stat("word_count", 2.0);
        ds.push(s);
        ds.push(Sample::from_text("中文文本"));
        ds.push(Sample::new());
        ds
    }

    #[test]
    fn binary_roundtrip() {
        let ds = rich_dataset();
        let bytes = to_bytes(&ds);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn jsonl_roundtrip() {
        let ds = rich_dataset();
        let text = to_jsonl(&ds);
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds = Dataset::new();
        assert_eq!(from_bytes(&to_bytes(&ds)).unwrap(), ds);
        assert_eq!(from_jsonl(&to_jsonl(&ds)).unwrap(), ds);
    }

    #[test]
    fn corrupt_binary_rejected() {
        assert!(from_bytes(&[]).is_err());
        assert!(from_bytes(&[9, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        let mut bytes = to_bytes(&rich_dataset());
        bytes.truncate(bytes.len() / 2);
        assert!(from_bytes(&bytes).is_err());
        let mut extra = to_bytes(&rich_dataset());
        extra.push(0);
        assert!(from_bytes(&extra).is_err());
    }

    #[test]
    fn corrupt_jsonl_rejected() {
        assert!(from_jsonl("{\"ok\": 1}\nnot json\n").is_err());
        assert!(from_jsonl("[1, 2, 3]\n").is_err()); // root must be a map
    }

    proptest! {
        #[test]
        fn prop_binary_roundtrip(texts in proptest::collection::vec(".*", 0..20)) {
            let mut ds = Dataset::new();
            for (i, t) in texts.iter().enumerate() {
                let mut s = Sample::from_text(t.clone());
                s.set_stat("idx", i as f64);
                ds.push(s);
            }
            let back = from_bytes(&to_bytes(&ds)).unwrap();
            prop_assert_eq!(back, ds);
        }

        #[test]
        fn prop_jsonl_roundtrip_no_nan(texts in proptest::collection::vec("[a-zA-Z0-9 \\n\"\\\\]{0,60}", 0..10)) {
            let mut ds = Dataset::new();
            for t in &texts {
                ds.push(Sample::from_text(t.clone()));
            }
            let back = from_jsonl(&to_jsonl(&ds)).unwrap();
            prop_assert_eq!(back, ds);
        }
    }
}
