//! # dj-store — storage substrate (paper §4.1.1, §6)
//!
//! * [`codec`] — from-scratch cache-file compression (RLE and the LZ77-family
//!   "djz" codec standing in for zstd/LZ4);
//! * [`serialize`] — compact binary dataset format + JSONL import/export;
//! * [`cache`] — per-OP cache & checkpoint management with resume-from-
//!   longest-prefix, the backbone of the feedback-loop acceleration;
//! * [`space`] — the Appendix A.2 space-usage model and the automatic
//!   cache/checkpoint deployment policy.

pub mod cache;
pub mod codec;
pub mod serialize;
pub mod space;

pub use cache::{remove_cache_root, CacheManager, CacheMode};
pub use codec::{compress, decompress, Codec};
pub use serialize::{from_bytes, from_jsonl, to_bytes, to_jsonl};
pub use space::{
    cache_mode_bytes, checkpoint_mode_peak_bytes, plan_storage, PipelineShape, StoragePlan,
};
