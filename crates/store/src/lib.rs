//! # dj-store — storage substrate (paper §4.1.1, §6)
//!
//! * [`codec`] — from-scratch cache-file compression (RLE and the LZ77-family
//!   "djz" codec standing in for zstd/LZ4);
//! * [`serialize`] — compact binary dataset format + JSONL import/export;
//! * [`cache`] — per-OP cache & checkpoint management with resume-from-
//!   longest-prefix, the backbone of the feedback-loop acceleration;
//! * [`space`] — the Appendix A.2 space-usage model and the automatic
//!   cache/checkpoint deployment policy;
//! * [`shard_stream`] — length-prefixed, checksummed shard frames and the
//!   disk-backed [`ShardSpool`], the storage substrate of the out-of-core
//!   (spill-to-disk) execution mode;
//! * [`columnar`] — columnar `DJSC` shard frames: per-column compressed,
//!   checksummed regions behind an offset table, so projection-aware
//!   stages decode only the columns their OPs' field footprints name and
//!   splice the rest through byte-for-byte;
//! * [`sidecar`] — the checksummed `DJCS` planner-stats sidecar: EWMA
//!   per-op cost/selectivity aggregates persisted under the cache root so
//!   the adaptive planner (`dj-exec`) learns across runs.

// Panic-on-error is banned in library code: every unwrap/expect outside
// tests is either restructured away or carries an explicit `#[allow]`
// with its infallibility argument.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod codec;
pub mod columnar;
pub mod serialize;
pub mod shard_stream;
pub mod sidecar;
pub mod space;

pub use cache::{remove_cache_root, CacheManager, CacheMode, CachedStage};
pub use codec::{compress, decompress, Codec};
pub use columnar::{
    encode_columnar_frame, split_column_path, ColumnRegion, ColumnarSlab, COLUMNAR_FRAME_MAGIC,
};
pub use serialize::{
    from_bytes, from_jsonl, sample_count, texts_at, to_bytes, to_jsonl, values_from_bytes,
    values_to_bytes, write_jsonl_into,
};
pub use sidecar::{
    OpAggregate, StatsSidecar, STATS_SIDECAR_FILE, STATS_SIDECAR_MAGIC, STATS_SIDECAR_VERSION,
};

pub use shard_stream::{
    count_frames, encode_shard_frame, read_shard_frame, read_shard_stream, write_shard_frame,
    FrameSlab, ShardSpool, ShardStreamReader, ShardStreamWriter, FINGERPRINT_MAGIC,
    SHARD_FRAME_MAGIC,
};
pub use space::{
    cache_mode_bytes, checkpoint_mode_peak_bytes, plan_storage, PipelineShape, StoragePlan,
};
