//! Cache & checkpoint management (paper §4.1.1).
//!
//! The executor stores the dataset after each OP under a directory keyed by
//! the recipe fingerprint. Two modes mirror the paper's space/time
//! trade-off:
//!
//! * **Cache mode** — every OP's output is kept, so a re-run with a
//!   modified recipe resumes from the longest shared prefix of the OP list
//!   (small adjustments re-execute only the tail).
//! * **Checkpoint mode** — only the most recent OP's output is kept; older
//!   entries are cleaned up after each successful save (Appendix A.2's
//!   3×S peak-space pipeline).
//!
//! Entries are optionally compressed with a [`Codec`].

use std::fs;
use std::path::{Path, PathBuf};

use dj_core::{Dataset, Result};

use crate::codec::{compress, decompress, Codec};
use crate::columnar::COLUMNAR_FRAME_MAGIC;
use crate::serialize::{from_bytes, to_bytes};
use crate::shard_stream::{
    count_frames, read_shard_stream, ShardSpool, ShardStreamReader, ShardStreamWriter,
    SHARD_FRAME_MAGIC,
};

/// Cache retention policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Keep every OP's output (max storage, min re-execution).
    Cache,
    /// Keep only the latest OP's output (min storage, more re-execution).
    Checkpoint,
    /// Keep nothing (baseline / benchmark mode).
    Disabled,
}

/// Directory-backed cache of per-OP dataset snapshots.
pub struct CacheManager {
    root: PathBuf,
    mode: CacheMode,
    codec: Codec,
    recipe_fingerprint: u64,
}

impl CacheManager {
    /// Create a manager rooted at `dir` for a recipe with the given
    /// fingerprint. The directory is created on demand.
    pub fn new(dir: impl Into<PathBuf>, recipe_fingerprint: u64, mode: CacheMode) -> CacheManager {
        CacheManager {
            root: dir.into(),
            mode,
            codec: Codec::Djz,
            recipe_fingerprint,
        }
    }

    pub fn with_codec(mut self, codec: Codec) -> CacheManager {
        self.codec = codec;
        self
    }

    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// The cache root directory (shared across recipes). The adaptive
    /// planner parks its stats sidecar here so measurements survive across
    /// runs that share a cache.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Default path of the planner-stats sidecar under this cache root.
    /// Sidecar knowledge is recipe-independent (ops keep their names across
    /// recipes), so it lives at the root, not in a `recipe-*` subdir.
    pub fn stats_sidecar_path(&self) -> PathBuf {
        self.root.join(crate::sidecar::STATS_SIDECAR_FILE)
    }

    fn dir(&self) -> PathBuf {
        self.root
            .join(format!("recipe-{:016x}", self.recipe_fingerprint))
    }

    fn entry_path(&self, op_index: usize, op_name: &str) -> PathBuf {
        self.dir()
            .join(format!("{op_index:04}-{}.djc", safe_name(op_name)))
    }

    /// Persist the dataset state after OP `op_index`. In checkpoint mode,
    /// earlier entries are removed *after* the new entry is safely written
    /// (so a crash can at worst leave one extra file, never zero).
    pub fn save(&self, op_index: usize, op_name: &str, dataset: &Dataset) -> Result<PathBuf> {
        if self.mode == CacheMode::Disabled {
            return Ok(PathBuf::new());
        }
        let dir = self.dir();
        fs::create_dir_all(&dir)?;
        let path = self.entry_path(op_index, op_name);
        let tmp = path.with_extension("tmp");
        let frame = compress(&to_bytes(dataset), self.codec);
        fs::write(&tmp, &frame)?;
        fs::rename(&tmp, &path)?;
        if self.mode == CacheMode::Checkpoint {
            for entry in list_entries(&dir)? {
                if entry.op_index != op_index {
                    let _ = fs::remove_file(&entry.path);
                }
            }
        }
        Ok(path)
    }

    /// Persist a stage that lives on disk as spilled shards without ever
    /// materializing it: shard frames are appended to the entry as a
    /// multi-frame stream (each `shards` item is loaded, written, and
    /// dropped). The entry loads back through the same `load`/
    /// `latest_match` calls as a monolithic one.
    pub fn save_streamed<I>(&self, op_index: usize, op_name: &str, shards: I) -> Result<PathBuf>
    where
        I: IntoIterator<Item = Result<Dataset>>,
    {
        self.save_frames(op_index, op_name, shards)
    }

    /// Persist an in-memory sharded stage as a multi-frame entry straight
    /// from borrowed shards — no clone, no materialization. The entry
    /// loads back through the same `load`/`latest_match` calls as a
    /// monolithic one.
    pub fn save_shards(
        &self,
        op_index: usize,
        op_name: &str,
        shards: &[Dataset],
    ) -> Result<PathBuf> {
        self.save_frames(op_index, op_name, shards.iter().map(Ok))
    }

    fn save_frames<I, D>(&self, op_index: usize, op_name: &str, shards: I) -> Result<PathBuf>
    where
        I: IntoIterator<Item = Result<D>>,
        D: std::borrow::Borrow<Dataset>,
    {
        if self.mode == CacheMode::Disabled {
            return Ok(PathBuf::new());
        }
        let dir = self.dir();
        fs::create_dir_all(&dir)?;
        let path = self.entry_path(op_index, op_name);
        let tmp = path.with_extension("tmp");
        let mut writer =
            ShardStreamWriter::new(std::io::BufWriter::new(fs::File::create(&tmp)?), self.codec);
        let mut failed = None;
        for shard in shards {
            if let Err(e) = shard.and_then(|s| writer.write(s.borrow())) {
                failed = Some(e);
                break;
            }
        }
        if let Some(e) = failed {
            drop(writer);
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        writer.finish()?;
        fs::rename(&tmp, &path)?;
        if self.mode == CacheMode::Checkpoint {
            for entry in list_entries(&dir)? {
                if entry.op_index != op_index {
                    let _ = fs::remove_file(&entry.path);
                }
            }
        }
        Ok(path)
    }

    /// Persist a spilled stage by concatenating its spool's raw frame
    /// files into a multi-frame entry — no decode/re-encode round-trip and
    /// no materialization; one sequential copy per shard.
    pub fn save_spool(
        &self,
        op_index: usize,
        op_name: &str,
        spool: &ShardSpool,
    ) -> Result<PathBuf> {
        if self.mode == CacheMode::Disabled {
            return Ok(PathBuf::new());
        }
        let dir = self.dir();
        fs::create_dir_all(&dir)?;
        let path = self.entry_path(op_index, op_name);
        let tmp = path.with_extension("tmp");
        let copy_all = || -> Result<()> {
            let mut out = std::io::BufWriter::new(fs::File::create(&tmp)?);
            for i in 0..spool.shard_count() {
                spool.copy_shard_frame_into(i, &mut out)?;
            }
            std::io::Write::flush(&mut out)?;
            Ok(())
        };
        if let Err(e) = copy_all() {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        fs::rename(&tmp, &path)?;
        if self.mode == CacheMode::Checkpoint {
            for entry in list_entries(&dir)? {
                if entry.op_index != op_index {
                    let _ = fs::remove_file(&entry.path);
                }
            }
        }
        Ok(path)
    }

    /// Load the dataset state after OP `op_index`, if cached.
    pub fn load(&self, op_index: usize, op_name: &str) -> Result<Option<Dataset>> {
        let path = self.entry_path(op_index, op_name);
        if !path.exists() {
            return Ok(None);
        }
        Ok(Some(read_entry(&fs::read(&path)?)?))
    }

    /// The most recent cached state whose `(index, name)` matches a prefix
    /// of `ops`: returns `(op_index, dataset)` for the longest usable
    /// entry, enabling resume-after-change (§4.1.1).
    pub fn latest_match(&self, ops: &[(usize, String)]) -> Result<Option<(usize, Dataset)>> {
        let dir = self.dir();
        if !dir.exists() {
            return Ok(None);
        }
        let entries = list_entries(&dir)?;
        for (idx, name) in ops.iter().rev() {
            if let Some(e) = entries
                .iter()
                .find(|e| e.op_index == *idx && e.op_name == safe_name(name))
            {
                let ds = read_entry(&fs::read(&e.path)?)?;
                return Ok(Some((*idx, ds)));
            }
        }
        Ok(None)
    }

    /// Like [`CacheManager::latest_match`], but an entry saved as a
    /// multi-frame shard stream (a spilled stage) is rehydrated frame by
    /// frame into a [`ShardSpool`] under `spool_dir` instead of being
    /// materialized — at most one shard is in memory at a time, preserving
    /// the out-of-core memory ceiling across resume. Monolithic entries
    /// still come back as in-memory datasets; `spool_dir` is only created
    /// when a streamed entry is actually found.
    pub fn latest_match_streamed(
        &self,
        ops: &[(usize, String)],
        spool_dir: PathBuf,
    ) -> Result<Option<(usize, CachedStage)>> {
        let dir = self.dir();
        if !dir.exists() {
            return Ok(None);
        }
        let entries = list_entries(&dir)?;
        for (idx, name) in ops.iter().rev() {
            let Some(e) = entries
                .iter()
                .find(|e| e.op_index == *idx && e.op_name == safe_name(name))
            else {
                continue;
            };
            use std::io::{Read, Seek, SeekFrom};
            let mut file = fs::File::open(&e.path)?;
            let mut magic = [0u8; 4];
            let n = file.read(&mut magic)?;
            // Streamed entries may mix row (`DJSF`) and columnar (`DJSC`)
            // frames — e.g. saved by a columnar run; anything else is a
            // legacy whole-dataset entry.
            if n < 4 || (&magic != SHARD_FRAME_MAGIC && &magic != COLUMNAR_FRAME_MAGIC) {
                let ds = read_entry(&fs::read(&e.path)?)?;
                return Ok(Some((*idx, CachedStage::Mem(ds))));
            }
            file.seek(SeekFrom::Start(0))?;
            let frames = count_frames(&mut file)?;
            file.seek(SeekFrom::Start(0))?;
            let spool = ShardSpool::create(spool_dir, frames as usize, self.codec)?;
            let mut reader = ShardStreamReader::new(std::io::BufReader::new(file));
            for i in 0..frames as usize {
                let shard = reader.next_shard()?.ok_or_else(|| {
                    dj_core::DjError::Storage(format!("cache entry lost frame {i} of {frames}"))
                })?;
                spool.write_shard(i, &shard)?;
            }
            return Ok(Some((*idx, CachedStage::Spooled(spool))));
        }
        Ok(None)
    }

    /// Total bytes used by this recipe's cache entries.
    pub fn disk_usage(&self) -> Result<u64> {
        let dir = self.dir();
        if !dir.exists() {
            return Ok(0);
        }
        let mut total = 0;
        for e in list_entries(&dir)? {
            total += fs::metadata(&e.path)?.len();
        }
        Ok(total)
    }

    /// Number of stored entries.
    pub fn entry_count(&self) -> Result<usize> {
        let dir = self.dir();
        if !dir.exists() {
            return Ok(0);
        }
        Ok(list_entries(&dir)?.len())
    }

    /// Remove every entry for this recipe.
    pub fn clear(&self) -> Result<()> {
        let dir = self.dir();
        if dir.exists() {
            fs::remove_dir_all(&dir)?;
        }
        Ok(())
    }
}

/// A resumed stage as [`CacheManager::latest_match_streamed`] hands it
/// back: in memory for monolithic entries, rehydrated into a disk spool
/// for streamed (spilled) ones.
pub enum CachedStage {
    Mem(Dataset),
    Spooled(ShardSpool),
}

/// Decode a cache entry: either a single compressed dataset frame (the
/// in-memory save path) or a multi-frame shard stream (the spilled path).
fn read_entry(bytes: &[u8]) -> Result<Dataset> {
    if bytes.starts_with(SHARD_FRAME_MAGIC) || bytes.starts_with(COLUMNAR_FRAME_MAGIC) {
        read_shard_stream(bytes)
    } else {
        from_bytes(&decompress(bytes)?)
    }
}

struct Entry {
    op_index: usize,
    op_name: String,
    path: PathBuf,
}

/// Encode an op/stage name into a filesystem-safe filename component.
///
/// Stage-keyed entries concatenate every member step name, which can
/// exceed the 255-byte filename limit; long names keep a readable prefix
/// and append a stable hash of the full name.
fn safe_name(name: &str) -> String {
    const MAX: usize = 96;
    let clean: String = name
        .chars()
        .map(|c| {
            if c == '/' || c == '\\' || c == '\0' {
                '_'
            } else {
                c
            }
        })
        .collect();
    if clean.len() <= MAX {
        return clean;
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in clean.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut prefix_end = MAX - 17; // room for `~` + 16 hex digits
    while !clean.is_char_boundary(prefix_end) {
        prefix_end -= 1;
    }
    format!("{}~{h:016x}", &clean[..prefix_end])
}

fn list_entries(dir: &Path) -> Result<Vec<Entry>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name.strip_suffix(".djc") else {
            continue;
        };
        let Some((idx, op_name)) = stem.split_once('-') else {
            continue;
        };
        let Ok(op_index) = idx.parse::<usize>() else {
            continue;
        };
        out.push(Entry {
            op_index,
            op_name: op_name.to_string(),
            path,
        });
    }
    out.sort_by_key(|e| e.op_index);
    Ok(out)
}

/// Best-effort removal of a whole cache root (test/bench hygiene).
pub fn remove_cache_root(root: &Path) {
    let _ = fs::remove_dir_all(root);
}

impl Drop for CacheManager {
    fn drop(&mut self) {
        // Nothing: entries intentionally outlive the manager so later runs
        // can resume. Call `clear()` for explicit cleanup.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dj_core::Sample;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dj-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn ds(n: usize) -> Dataset {
        Dataset::from_samples(
            (0..n)
                .map(|i| Sample::from_text(format!("document number {i} with body text")))
                .collect(),
        )
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let cm = CacheManager::new(&dir, 0xABCD, CacheMode::Cache);
        let d = ds(10);
        cm.save(0, "op_a", &d).unwrap();
        let loaded = cm.load(0, "op_a").unwrap().unwrap();
        assert_eq!(loaded, d);
        assert!(cm.load(1, "op_b").unwrap().is_none());
        remove_cache_root(&dir);
    }

    #[test]
    fn cache_mode_keeps_all_checkpoint_keeps_last() {
        let dir = tmpdir("modes");
        let cache = CacheManager::new(&dir, 1, CacheMode::Cache);
        for i in 0..4 {
            cache.save(i, "op", &ds(5)).unwrap();
        }
        assert_eq!(cache.entry_count().unwrap(), 4);

        let ckpt = CacheManager::new(&dir, 2, CacheMode::Checkpoint);
        for i in 0..4 {
            ckpt.save(i, "op", &ds(5)).unwrap();
        }
        assert_eq!(ckpt.entry_count().unwrap(), 1);
        assert!(ckpt.load(3, "op").unwrap().is_some());
        assert!(ckpt.load(2, "op").unwrap().is_none());
        remove_cache_root(&dir);
    }

    #[test]
    fn disabled_mode_writes_nothing() {
        let dir = tmpdir("disabled");
        let cm = CacheManager::new(&dir, 3, CacheMode::Disabled);
        cm.save(0, "op", &ds(5)).unwrap();
        assert_eq!(cm.entry_count().unwrap(), 0);
        remove_cache_root(&dir);
    }

    #[test]
    fn latest_match_resumes_from_prefix() {
        let dir = tmpdir("resume");
        let cm = CacheManager::new(&dir, 4, CacheMode::Cache);
        cm.save(0, "clean", &ds(10)).unwrap();
        cm.save(1, "filter", &ds(8)).unwrap();
        cm.save(2, "dedup", &ds(6)).unwrap();
        // Recipe changed after index 1: only the prefix matches.
        let ops = vec![
            (0usize, "clean".to_string()),
            (1, "filter".to_string()),
            (2, "different_op".to_string()),
        ];
        let (idx, d) = cm.latest_match(&ops).unwrap().unwrap();
        assert_eq!(idx, 1);
        assert_eq!(d.len(), 8);
        remove_cache_root(&dir);
    }

    #[test]
    fn different_fingerprints_are_isolated() {
        let dir = tmpdir("fingerprints");
        let a = CacheManager::new(&dir, 10, CacheMode::Cache);
        let b = CacheManager::new(&dir, 11, CacheMode::Cache);
        a.save(0, "op", &ds(3)).unwrap();
        assert!(b.load(0, "op").unwrap().is_none());
        remove_cache_root(&dir);
    }

    #[test]
    fn disk_usage_and_clear() {
        let dir = tmpdir("usage");
        let cm = CacheManager::new(&dir, 12, CacheMode::Cache);
        assert_eq!(cm.disk_usage().unwrap(), 0);
        cm.save(0, "op", &ds(50)).unwrap();
        assert!(cm.disk_usage().unwrap() > 0);
        cm.clear().unwrap();
        assert_eq!(cm.entry_count().unwrap(), 0);
        remove_cache_root(&dir);
    }

    #[test]
    fn long_stage_names_are_hashed_into_safe_filenames() {
        // Stage-keyed entries join every member step name; a 20-op stage
        // easily exceeds the 255-byte filename limit.
        let long_a: String = (0..24)
            .map(|i| format!("some_rather_long_operator_name_{i}"))
            .collect::<Vec<_>>()
            .join("+");
        let long_b = format!("{long_a}+one_more_op");
        assert!(safe_name(&long_a).len() <= 96);
        assert_ne!(safe_name(&long_a), safe_name(&long_b));
        assert_eq!(safe_name("short_op"), "short_op");

        let dir = tmpdir("longnames");
        let cm = CacheManager::new(&dir, 21, CacheMode::Cache);
        cm.save(0, &long_a, &ds(4)).unwrap();
        assert_eq!(cm.load(0, &long_a).unwrap().unwrap(), ds(4));
        // latest_match resolves through the same encoding.
        let (idx, d) = cm
            .latest_match(&[(0usize, long_a.clone())])
            .unwrap()
            .unwrap();
        assert_eq!(idx, 0);
        assert_eq!(d, ds(4));
        // A different long name does not collide.
        assert!(cm.load(0, &long_b).unwrap().is_none());
        remove_cache_root(&dir);
    }

    #[test]
    fn streamed_entries_load_like_monolithic_ones() {
        let dir = tmpdir("streamed");
        let cm = CacheManager::new(&dir, 31, CacheMode::Cache);
        let full = ds(10);
        let shards: Vec<Dataset> = full.clone().into_shards(3);
        cm.save_streamed(0, "stage_a", shards.into_iter().map(Ok))
            .unwrap();
        assert_eq!(cm.load(0, "stage_a").unwrap().unwrap(), full);
        let (idx, back) = cm
            .latest_match(&[(0usize, "stage_a".to_string())])
            .unwrap()
            .unwrap();
        assert_eq!(idx, 0);
        assert_eq!(back, full);
        // A failing shard iterator aborts the save and leaves no entry.
        let err_iter = vec![
            Ok(ds(2)),
            Err(dj_core::DjError::Storage("spill read failed".into())),
        ];
        assert!(cm.save_streamed(1, "stage_b", err_iter).is_err());
        assert!(cm.load(1, "stage_b").unwrap().is_none());
        remove_cache_root(&dir);
    }

    #[test]
    fn compression_reduces_cache_size() {
        let dir = tmpdir("codec");
        let raw = CacheManager::new(&dir, 13, CacheMode::Cache).with_codec(Codec::None);
        let packed = CacheManager::new(&dir, 14, CacheMode::Cache).with_codec(Codec::Djz);
        // Repetitive dataset → compressible.
        let d = Dataset::from_texts((0..100).map(|_| "repeat repeat repeat repeat".to_string()));
        raw.save(0, "op", &d).unwrap();
        packed.save(0, "op", &d).unwrap();
        assert!(packed.disk_usage().unwrap() < raw.disk_usage().unwrap() / 2);
        // And still loads correctly.
        assert_eq!(packed.load(0, "op").unwrap().unwrap(), d);
        remove_cache_root(&dir);
    }
}
