//! The space-usage model of Appendix A.2.
//!
//! With M Mappers, F Filters, D Deduplicators and an input dataset of size
//! S, the paper derives:
//!
//! * cache mode:      `(1 + M + F + 𝟙(F>0) + D) × S`
//! * checkpoint mode: `3 × S` peak (new entry + previous entry + original)
//!
//! These formulas drive the automatic decision of whether to enable caches
//! given available disk space (§4.1.1: "actively monitors disk space usage
//! ... automatically determines if, and when, checkpoints and cache should
//! be deployed").

use dj_core::OpKind;

/// Pipeline shape: counts of each transforming OP kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineShape {
    pub mappers: usize,
    pub filters: usize,
    pub deduplicators: usize,
}

impl PipelineShape {
    pub fn from_kinds(kinds: &[OpKind]) -> PipelineShape {
        let mut s = PipelineShape::default();
        for k in kinds {
            match k {
                OpKind::Mapper => s.mappers += 1,
                OpKind::Filter => s.filters += 1,
                OpKind::Deduplicator => s.deduplicators += 1,
                OpKind::Formatter => {}
            }
        }
        s
    }

    pub fn total_ops(&self) -> usize {
        self.mappers + self.filters + self.deduplicators
    }
}

/// Predicted cache-mode disk usage in bytes:
/// `(1 + M + F + 𝟙(F>0) + D) × S`.
pub fn cache_mode_bytes(shape: PipelineShape, dataset_bytes: u64) -> u64 {
    let sets = 1 // the loaded original
        + shape.mappers
        + shape.filters
        + usize::from(shape.filters > 0) // extra copy when the stats column is added
        + shape.deduplicators;
    sets as u64 * dataset_bytes
}

/// Predicted checkpoint-mode *peak* disk usage in bytes: `3 × S`.
pub fn checkpoint_mode_peak_bytes(dataset_bytes: u64) -> u64 {
    3 * dataset_bytes
}

/// Storage decision given available disk space (the automatic deployment
/// policy of §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoragePlan {
    /// Enough room for per-OP caches.
    FullCache,
    /// Only the rolling checkpoint fits.
    CheckpointOnly,
    /// Not even 3×S available: run without persistence.
    NoPersistence,
}

/// Choose a storage plan from the predicted footprints.
pub fn plan_storage(shape: PipelineShape, dataset_bytes: u64, available_bytes: u64) -> StoragePlan {
    if cache_mode_bytes(shape, dataset_bytes) <= available_bytes {
        StoragePlan::FullCache
    } else if checkpoint_mode_peak_bytes(dataset_bytes) <= available_bytes {
        StoragePlan::CheckpointOnly
    } else {
        StoragePlan::NoPersistence
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_formula_cache_mode() {
        // M=5, F=8, D=1, S=1 → (1+5+8+1+1) = 16 sets.
        let shape = PipelineShape {
            mappers: 5,
            filters: 8,
            deduplicators: 1,
        };
        assert_eq!(cache_mode_bytes(shape, 1), 16);
        // No filters → no extra stats copy.
        let no_f = PipelineShape {
            mappers: 2,
            filters: 0,
            deduplicators: 1,
        };
        assert_eq!(cache_mode_bytes(no_f, 10), 40);
    }

    #[test]
    fn checkpoint_peak_is_3s() {
        assert_eq!(checkpoint_mode_peak_bytes(100), 300);
    }

    #[test]
    fn shape_from_kinds() {
        use OpKind::*;
        let shape = PipelineShape::from_kinds(&[Mapper, Filter, Filter, Deduplicator, Formatter]);
        assert_eq!(
            shape,
            PipelineShape {
                mappers: 1,
                filters: 2,
                deduplicators: 1
            }
        );
        assert_eq!(shape.total_ops(), 4);
    }

    #[test]
    fn storage_plan_thresholds() {
        let shape = PipelineShape {
            mappers: 1,
            filters: 1,
            deduplicators: 0,
        }; // cache = 4×S
        assert_eq!(plan_storage(shape, 100, 400), StoragePlan::FullCache);
        assert_eq!(plan_storage(shape, 100, 399), StoragePlan::CheckpointOnly);
        assert_eq!(plan_storage(shape, 100, 300), StoragePlan::CheckpointOnly);
        assert_eq!(plan_storage(shape, 100, 299), StoragePlan::NoPersistence);
    }
}
