//! The standalone tracer tool (paper §4.2, Fig. 4(a)): run one OP against a
//! dataset and report exactly what it would do — discarded samples for
//! Filters, pre/post differences for Mappers, (near-)duplicate pairs for
//! Deduplicators — without committing the change.

use dj_core::{Dataset, Op, Result, SampleContext};

/// One traced effect of an OP on a specific sample.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Filter would discard sample `index`; `stats` shows the deciding values.
    Discard {
        index: usize,
        stats: Vec<(String, f64)>,
    },
    /// Mapper would rewrite sample `index`.
    Edit {
        index: usize,
        before: String,
        after: String,
    },
    /// Deduplicator would drop `dropped` as a duplicate of `kept`.
    DuplicatePair { kept: usize, dropped: usize },
}

/// Trace report for one OP application.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    pub op_name: String,
    pub effects: Vec<Effect>,
    pub samples_seen: usize,
}

impl TraceReport {
    /// Number of samples the OP would remove.
    pub fn removed(&self) -> usize {
        self.effects
            .iter()
            .filter(|e| matches!(e, Effect::Discard { .. } | Effect::DuplicatePair { .. }))
            .count()
    }

    /// Number of samples the OP would edit.
    pub fn edited(&self) -> usize {
        self.effects
            .iter()
            .filter(|e| matches!(e, Effect::Edit { .. }))
            .count()
    }

    /// Render a human-readable digest (at most `limit` effects).
    pub fn render(&self, limit: usize) -> String {
        let mut out = format!(
            "trace of `{}` over {} samples: {} removed, {} edited\n",
            self.op_name,
            self.samples_seen,
            self.removed(),
            self.edited()
        );
        for e in self.effects.iter().take(limit) {
            match e {
                Effect::Discard { index, stats } => {
                    let stats_str: Vec<String> =
                        stats.iter().map(|(k, v)| format!("{k}={v:.3}")).collect();
                    out.push_str(&format!(
                        "  - discard #{index} [{}]\n",
                        stats_str.join(", ")
                    ));
                }
                Effect::Edit {
                    index,
                    before,
                    after,
                } => {
                    out.push_str(&format!(
                        "  - edit #{index}: {:?} -> {:?}\n",
                        truncate(before),
                        truncate(after)
                    ));
                }
                Effect::DuplicatePair { kept, dropped } => {
                    out.push_str(&format!("  - dup #{dropped} (duplicate of #{kept})\n"));
                }
            }
        }
        out
    }
}

fn truncate(s: &str) -> String {
    if s.chars().count() <= 60 {
        s.to_string()
    } else {
        format!("{}…", s.chars().take(60).collect::<String>())
    }
}

/// Trace `op` over a *copy* of the dataset: the input is not modified.
pub fn trace_op(op: &Op, dataset: &Dataset) -> Result<TraceReport> {
    let mut report = TraceReport {
        op_name: op.name().to_string(),
        samples_seen: dataset.len(),
        ..TraceReport::default()
    };
    let mut ctx = SampleContext::new();
    match op {
        Op::Mapper(m) => {
            for (i, s) in dataset.iter().enumerate() {
                ctx.invalidate();
                let mut copy = s.clone();
                let before = copy.text().to_string();
                if m.process(&mut copy, &mut ctx)? {
                    report.effects.push(Effect::Edit {
                        index: i,
                        before,
                        after: copy.text().to_string(),
                    });
                }
            }
        }
        Op::Filter(f) => {
            for (i, s) in dataset.iter().enumerate() {
                ctx.invalidate();
                let mut copy = s.clone();
                f.compute_stats(&mut copy, &mut ctx)?;
                if !f.process(&copy)? {
                    report.effects.push(Effect::Discard {
                        index: i,
                        stats: copy.stats(),
                    });
                }
            }
        }
        Op::Deduplicator(d) => {
            let mut hashes = Vec::with_capacity(dataset.len());
            for s in dataset.iter() {
                ctx.invalidate();
                hashes.push(d.compute_hash(s, &mut ctx)?);
            }
            let mask = d.keep_mask(dataset.len(), &hashes)?;
            // Attribute each drop to the nearest earlier kept sample with an
            // identical fingerprint when possible; otherwise to the first
            // kept sample (an approximation adequate for inspection).
            for (i, &keep) in mask.iter().enumerate() {
                if keep {
                    continue;
                }
                let kept = (0..i)
                    .rev()
                    .find(|&j| mask[j] && hashes[j].structural_eq(&hashes[i]))
                    .or_else(|| (0..i).rev().find(|&j| mask[j]))
                    .unwrap_or(0);
                report
                    .effects
                    .push(Effect::DuplicatePair { kept, dropped: i });
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dj_core::OpParams;
    use dj_ops::builtin_registry;

    #[test]
    fn traces_filter_discards_without_mutation() {
        let reg = builtin_registry();
        let mut p = OpParams::new();
        p.insert("min_len".into(), dj_core::Value::Float(10.0));
        p.insert("max_len".into(), dj_core::Value::Float(1000.0));
        let op = reg.build("text_length_filter", &p).unwrap();
        let ds = Dataset::from_texts(["tiny", "long enough to survive easily"]);
        let before = ds.clone();
        let report = trace_op(&op, &ds).unwrap();
        assert_eq!(ds, before, "tracing must not mutate");
        assert_eq!(report.removed(), 1);
        assert!(matches!(
            report.effects[0],
            Effect::Discard { index: 0, .. }
        ));
        assert!(report.render(10).contains("discard #0"));
    }

    #[test]
    fn traces_mapper_edits() {
        let reg = builtin_registry();
        let op = reg
            .build("whitespace_normalization_mapper", &OpParams::new())
            .unwrap();
        let ds = Dataset::from_texts(["a   b", "clean"]);
        let report = trace_op(&op, &ds).unwrap();
        assert_eq!(report.edited(), 1);
        match &report.effects[0] {
            Effect::Edit {
                index,
                before,
                after,
            } => {
                assert_eq!(*index, 0);
                assert_eq!(before, "a   b");
                assert_eq!(after, "a b");
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    fn traces_duplicate_pairs() {
        let reg = builtin_registry();
        let op = reg
            .build("document_deduplicator", &OpParams::new())
            .unwrap();
        let ds = Dataset::from_texts(["same", "other", "same"]);
        let report = trace_op(&op, &ds).unwrap();
        assert_eq!(
            report.effects,
            vec![Effect::DuplicatePair {
                kept: 0,
                dropped: 2
            }]
        );
        assert!(report.render(5).contains("dup #2"));
    }
}
