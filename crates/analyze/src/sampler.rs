//! Enhanced samplers for LLM data (paper §5.2).
//!
//! "Our stratified sampling technique ... capitalizes on information within
//! the metadata or statistical fields ... we consider various heterogeneous
//! criteria such as document length, token count, the frequency of boolean
//! predicates ... and even linguistic diversity formulated via occurrences
//! of verb-noun pairs."

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use dj_core::{Dataset, Sample};
use dj_hash::FxHashMap;
use dj_text::lexicon;

/// Uniform random sample of `n` items (without replacement).
pub fn random_sample(dataset: &Dataset, n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    indices.shuffle(&mut rng);
    indices.truncate(n);
    indices.sort_unstable(); // keep original order for determinism of output
    dataset.select(&indices)
}

/// Stratified sampling over an arbitrary bucketing function: draws up to
/// `per_bucket` samples from each bucket (uniformly within the bucket).
pub fn stratified_sample<F>(
    dataset: &Dataset,
    bucket_of: F,
    per_bucket: usize,
    seed: u64,
) -> Dataset
where
    F: Fn(&Sample) -> String,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buckets: FxHashMap<String, Vec<usize>> = FxHashMap::default();
    for (i, s) in dataset.iter().enumerate() {
        buckets.entry(bucket_of(s)).or_default().push(i);
    }
    let mut keys: Vec<&String> = buckets.keys().collect();
    keys.sort(); // deterministic bucket order
    let mut chosen = Vec::new();
    for k in keys {
        let mut idxs = buckets[k].clone();
        idxs.shuffle(&mut rng);
        idxs.truncate(per_bucket);
        chosen.extend(idxs);
    }
    chosen.sort_unstable();
    dataset.select(&chosen)
}

/// Stratify by quantile bins of a recorded statistic: `bins` equal-count
/// strata over `stats.<key>`, up to `per_bucket` samples each. Samples
/// missing the stat form their own stratum.
pub fn stratified_by_stat(
    dataset: &Dataset,
    key: &str,
    bins: usize,
    per_bucket: usize,
    seed: u64,
) -> Dataset {
    assert!(bins > 0, "need at least one bin");
    let mut values: Vec<f64> = dataset
        .iter()
        .filter_map(|s| s.stat(key))
        .filter(|v| v.is_finite())
        .collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let cuts: Vec<f64> = if values.is_empty() {
        Vec::new()
    } else {
        (1..bins)
            .map(|i| values[(i * values.len() / bins).min(values.len() - 1)])
            .collect()
    };
    stratified_sample(
        dataset,
        |s| match s.stat(key) {
            None => "missing".to_string(),
            Some(v) => {
                let bin = cuts.iter().filter(|&&c| v >= c).count();
                format!("bin{bin:03}")
            }
        },
        per_bucket,
        seed,
    )
}

/// Diversity-maximizing sampler: stratify by the sample's most prominent
/// verb-noun pair so the selection spreads across instruction styles
/// (the recipe behind Table 3's Data-Juicer subsets).
pub fn diversity_sample(dataset: &Dataset, n: usize, seed: u64) -> Dataset {
    let verbs = lexicon::common_verbs();
    let nouns = lexicon::common_nouns();
    // Bucket by first verb-noun pair (or "none").
    let bucket_of = |s: &Sample| {
        let words = dj_core::segment_words(s.text());
        lexicon::verb_noun_pairs(&words, &verbs, &nouns)
            .first()
            .map(|(v, o)| format!("{v}/{o}"))
            .unwrap_or_else(|| "none".to_string())
    };
    // Count buckets, then take a near-equal share from each until n filled.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buckets: FxHashMap<String, Vec<usize>> = FxHashMap::default();
    for (i, s) in dataset.iter().enumerate() {
        buckets.entry(bucket_of(s)).or_default().push(i);
    }
    let mut keys: Vec<String> = buckets.keys().cloned().collect();
    keys.sort();
    for k in &keys {
        buckets.get_mut(k).expect("key exists").shuffle(&mut rng);
    }
    let mut chosen = Vec::with_capacity(n);
    let mut round = 0;
    while chosen.len() < n {
        let mut advanced = false;
        for k in &keys {
            if chosen.len() >= n {
                break;
            }
            if let Some(&idx) = buckets[k].get(round) {
                chosen.push(idx);
                advanced = true;
            }
        }
        if !advanced {
            break; // dataset exhausted
        }
        round += 1;
    }
    chosen.sort_unstable();
    chosen.dedup();
    dataset.select(&chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tagged_dataset() -> Dataset {
        let mut ds = Dataset::new();
        for i in 0..100 {
            let mut s = Sample::from_text(format!("document {i}"));
            s.set_meta("source", if i % 4 == 0 { "web" } else { "book" });
            s.set_stat("text_len", i as f64);
            ds.push(s);
        }
        ds
    }

    #[test]
    fn random_sample_size_and_determinism() {
        let ds = tagged_dataset();
        let a = random_sample(&ds, 10, 7);
        let b = random_sample(&ds, 10, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_ne!(a, random_sample(&ds, 10, 8));
        assert_eq!(
            random_sample(&ds, 1000, 1).len(),
            100,
            "clamped to dataset size"
        );
    }

    #[test]
    fn stratified_by_meta_balances_buckets() {
        let ds = tagged_dataset();
        let out = stratified_sample(
            &ds,
            |s| {
                s.meta("source")
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_string()
            },
            5,
            3,
        );
        assert_eq!(out.len(), 10); // 5 web + 5 book
        let webs = out
            .iter()
            .filter(|s| s.meta("source").unwrap().as_str() == Some("web"))
            .count();
        assert_eq!(webs, 5);
    }

    #[test]
    fn stratified_by_stat_spans_range() {
        let ds = tagged_dataset();
        let out = stratified_by_stat(&ds, "text_len", 4, 2, 5);
        assert_eq!(out.len(), 8);
        // Selections cover low and high quartiles.
        let lens: Vec<f64> = out.iter().filter_map(|s| s.stat("text_len")).collect();
        assert!(lens.iter().any(|&v| v < 25.0));
        assert!(lens.iter().any(|&v| v >= 75.0));
    }

    #[test]
    fn diversity_sample_spreads_over_instructions() {
        let mut ds = Dataset::new();
        // 90 "write story" + 5 "explain plan" + 5 "translate email".
        for i in 0..90 {
            ds.push(Sample::from_text(format!("Write a story about topic {i}")));
        }
        for i in 0..5 {
            ds.push(Sample::from_text(format!("Explain the plan for step {i}")));
            ds.push(Sample::from_text(format!("Translate the email number {i}")));
        }
        let out = diversity_sample(&ds, 12, 9);
        assert_eq!(out.len(), 12);
        let explain = out
            .iter()
            .filter(|s| s.text().starts_with("Explain"))
            .count();
        let translate = out
            .iter()
            .filter(|s| s.text().starts_with("Translate"))
            .count();
        // Round-robin across buckets keeps minority styles represented
        // far above their 5% base rate.
        assert!(explain >= 3, "explain={explain}");
        assert!(translate >= 3, "translate={translate}");
    }

    #[test]
    fn diversity_sample_handles_small_n() {
        let ds = Dataset::from_texts(["Write a story now", "Explain the plan today"]);
        assert_eq!(diversity_sample(&ds, 1, 1).len(), 1);
        assert_eq!(diversity_sample(&ds, 10, 1).len(), 2);
    }

    #[test]
    fn empty_dataset_sampling() {
        let ds = Dataset::new();
        assert!(random_sample(&ds, 5, 1).is_empty());
        assert!(diversity_sample(&ds, 5, 1).is_empty());
    }
}
