//! The analyzer tool (paper §4.2): whole-dataset statistical summaries.
//!
//! "By default, the summary of per-sample statistics covers 13 dimensions
//! and automatically displays histograms and box plots for each statistical
//! variable." This module computes those dimensions, records them into each
//! sample's `stats` column (so Filters can reuse them — the §3.2
//! decoupling), and summarizes every column with count / mean / std /
//! min / max / quantiles / entropy.

use std::collections::BTreeMap;

use dj_core::{Dataset, SampleContext};
use dj_hash::FxHashMap;
use dj_text::lexicon;
use dj_text::stats as tstats;

/// The 13 default analyzer dimensions.
pub const DEFAULT_DIMENSIONS: [&str; 13] = [
    "text_len",
    "word_count",
    "avg_word_length",
    "alnum_ratio",
    "special_char_ratio",
    "whitespace_ratio",
    "digit_ratio",
    "char_rep_ratio",
    "word_rep_ratio",
    "stopword_ratio",
    "flagged_word_ratio",
    "paragraph_count",
    "word_entropy",
];

/// Summary statistics of one numeric column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    pub count: usize,
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
    pub q25: f64,
    pub median: f64,
    pub q75: f64,
    /// Shannon entropy (bits) of a 32-bin histogram of the column.
    pub entropy: f64,
}

impl ColumnSummary {
    /// Summarize a value vector. Returns `None` for empty input.
    pub fn from_values(values: &[f64]) -> Option<ColumnSummary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        Some(ColumnSummary {
            count: n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            q25: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q75: quantile(&sorted, 0.75),
            entropy: histogram_entropy(&sorted, 32),
        })
    }
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

fn histogram_entropy(sorted: &[f64], bins: usize) -> f64 {
    let (min, max) = (sorted[0], sorted[sorted.len() - 1]);
    if (max - min).abs() < f64::EPSILON {
        return 0.0;
    }
    let mut counts = vec![0usize; bins];
    for &v in sorted {
        let idx = (((v - min) / (max - min)) * bins as f64) as usize;
        counts[idx.min(bins - 1)] += 1;
    }
    let n = sorted.len() as f64;
    -counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            p * p.log2()
        })
        .sum::<f64>()
}

/// A dataset-level probe: per-dimension summaries plus the verb-noun
/// diversity distribution (the pie plots of Fig. 5).
#[derive(Debug, Clone)]
pub struct DataProbe {
    pub summaries: BTreeMap<String, ColumnSummary>,
    /// Raw per-dimension columns (for histograms / diff plots).
    pub columns: BTreeMap<String, Vec<f64>>,
    /// `(verb, object) → count`, sorted descending.
    pub verb_noun: Vec<((String, String), usize)>,
    pub sample_count: usize,
}

/// One entry of the Fig. 5 two-ring pie: a verb, its count, and its top
/// direct objects with counts.
pub type VerbObjects = (String, usize, Vec<(String, usize)>);

impl DataProbe {
    /// Top root verbs with their top direct objects (Fig. 5's two-ring pie).
    pub fn top_verbs(&self, top_n: usize, objects_per_verb: usize) -> Vec<VerbObjects> {
        let mut by_verb: BTreeMap<&str, (usize, BTreeMap<&str, usize>)> = BTreeMap::new();
        for ((v, o), c) in &self.verb_noun {
            let e = by_verb.entry(v).or_default();
            e.0 += c;
            *e.1.entry(o).or_default() += c;
        }
        let mut verbs: Vec<_> = by_verb.into_iter().collect();
        verbs.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(b.0)));
        verbs
            .into_iter()
            .take(top_n)
            .map(|(v, (count, objs))| {
                let mut os: Vec<_> = objs.into_iter().collect();
                os.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
                (
                    v.to_string(),
                    count,
                    os.into_iter()
                        .take(objects_per_verb)
                        .map(|(o, c)| (o.to_string(), c))
                        .collect(),
                )
            })
            .collect()
    }

    /// Diversity score: Shannon entropy of the verb-noun distribution.
    pub fn verb_noun_entropy(&self) -> f64 {
        let total: usize = self.verb_noun.iter().map(|(_, c)| c).sum();
        if total == 0 {
            return 0.0;
        }
        -self
            .verb_noun
            .iter()
            .map(|(_, c)| {
                let p = *c as f64 / total as f64;
                p * p.log2()
            })
            .sum::<f64>()
    }
}

/// The analyzer: computes dimensions and builds [`DataProbe`]s.
pub struct Analyzer {
    /// Which dimensions to compute (defaults to all 13).
    pub dimensions: Vec<String>,
    /// Field to analyze.
    pub field: String,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer {
            dimensions: DEFAULT_DIMENSIONS.iter().map(|s| s.to_string()).collect(),
            field: "text".to_string(),
        }
    }
}

impl Analyzer {
    pub fn new() -> Analyzer {
        Analyzer::default()
    }

    /// Restrict to a subset of dimensions ("users also have the flexibility
    /// to adjust the dimensions to observe").
    pub fn with_dimensions(mut self, dims: &[&str]) -> Analyzer {
        self.dimensions = dims.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Analyze the dataset: record per-sample stats and summarize.
    ///
    /// Stats already present on a sample are *not* recomputed, so a probe
    /// after a filtering pipeline reuses the filters' work.
    pub fn probe(&self, dataset: &mut Dataset) -> DataProbe {
        let stopwords = lexicon::english_stopwords();
        let flagged = lexicon::flagged_words();
        let verbs = lexicon::common_verbs();
        let nouns = lexicon::common_nouns();
        let mut columns: BTreeMap<String, Vec<f64>> = self
            .dimensions
            .iter()
            .map(|d| (d.clone(), Vec::with_capacity(dataset.len())))
            .collect();
        let mut verb_noun: FxHashMap<(String, String), usize> = FxHashMap::default();
        let mut ctx = SampleContext::new();
        let field = self.field.clone();
        for sample in dataset.samples_mut() {
            ctx.invalidate();
            let text = sample.text_at(&field).to_string();
            for dim in &self.dimensions {
                if !sample.has_stat(dim) {
                    let v = match dim.as_str() {
                        "text_len" => text.chars().count() as f64,
                        "word_count" => ctx.words(&text).len() as f64,
                        "avg_word_length" => tstats::avg_word_length(ctx.words(&text)),
                        "alnum_ratio" => tstats::alnum_ratio(&text),
                        "special_char_ratio" => tstats::special_char_ratio(&text),
                        "whitespace_ratio" => tstats::whitespace_ratio(&text),
                        "digit_ratio" => tstats::digit_ratio(&text),
                        "char_rep_ratio" => tstats::char_rep_ratio(&text, 10),
                        "word_rep_ratio" => tstats::word_rep_ratio(ctx.words(&text), 5),
                        "stopword_ratio" => tstats::lexicon_ratio(ctx.words(&text), &stopwords),
                        "flagged_word_ratio" => tstats::lexicon_ratio(ctx.words(&text), &flagged),
                        "paragraph_count" => tstats::paragraph_count(&text) as f64,
                        "word_entropy" => tstats::word_entropy(ctx.words(&text)),
                        _ => continue, // unknown custom dimension: only reused if present
                    };
                    sample.set_stat(dim, v);
                }
                if let Some(v) = sample.stat(dim) {
                    columns.get_mut(dim).expect("dim registered").push(v);
                }
            }
            for pair in lexicon::verb_noun_pairs(ctx.words(&text), &verbs, &nouns) {
                *verb_noun.entry(pair).or_insert(0) += 1;
            }
        }
        let summaries = columns
            .iter()
            .filter_map(|(k, v)| ColumnSummary::from_values(v).map(|s| (k.clone(), s)))
            .collect();
        let mut vn: Vec<_> = verb_noun.into_iter().collect();
        vn.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        DataProbe {
            summaries,
            columns,
            verb_noun: vn,
            sample_count: dataset.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dj_core::Sample;

    fn dataset() -> Dataset {
        Dataset::from_texts([
            "Write a story about the budget committee and explain the plan in detail.",
            "The research method improves the accuracy of the analysis considerably.",
            "spam spam spam spam spam spam",
            "Short.",
        ])
    }

    #[test]
    fn probe_covers_all_13_dimensions() {
        let mut ds = dataset();
        let probe = Analyzer::new().probe(&mut ds);
        assert_eq!(probe.sample_count, 4);
        for dim in DEFAULT_DIMENSIONS {
            assert!(probe.summaries.contains_key(dim), "missing {dim}");
            assert_eq!(probe.columns[dim].len(), 4);
        }
        // Stats were recorded on the samples for reuse.
        assert!(ds.get(0).unwrap().has_stat("word_count"));
    }

    #[test]
    fn summary_statistics_are_correct() {
        let s = ColumnSummary::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-9);
        assert!((s.median - 3.0).abs() < 1e-9);
        assert!((s.q25 - 2.0).abs() < 1e-9);
        assert!((s.q75 - 4.0).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std - 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn summary_handles_edge_cases() {
        assert!(ColumnSummary::from_values(&[]).is_none());
        assert!(ColumnSummary::from_values(&[f64::INFINITY]).is_none());
        let s = ColumnSummary::from_values(&[7.0]).unwrap();
        assert_eq!(s.median, 7.0);
        assert_eq!(s.entropy, 0.0); // constant column
    }

    #[test]
    fn existing_stats_are_reused() {
        let mut ds = Dataset::from_samples(vec![{
            let mut s = Sample::from_text("three little words");
            s.set_stat("word_count", 99.0); // pre-seeded, wrong on purpose
            s
        }]);
        let probe = Analyzer::new().probe(&mut ds);
        assert_eq!(probe.columns["word_count"], vec![99.0]);
    }

    #[test]
    fn verb_noun_diversity_extracted() {
        let mut ds = Dataset::from_texts([
            "Write a story about dragons",
            "Write a poem about spring",
            "Explain the plan to the team",
        ]);
        let probe = Analyzer::new().probe(&mut ds);
        assert!(!probe.verb_noun.is_empty());
        let tops = probe.top_verbs(2, 2);
        assert_eq!(tops[0].0, "write");
        assert_eq!(tops[0].1, 2);
        assert!(probe.verb_noun_entropy() > 0.0);
    }

    #[test]
    fn custom_dimension_subset() {
        let mut ds = dataset();
        let probe = Analyzer::new()
            .with_dimensions(&["text_len", "word_count"])
            .probe(&mut ds);
        assert_eq!(probe.summaries.len(), 2);
        assert!(!ds.get(0).unwrap().has_stat("alnum_ratio"));
    }

    #[test]
    fn empty_dataset_probe() {
        let mut ds = Dataset::new();
        let probe = Analyzer::new().probe(&mut ds);
        assert!(probe.summaries.is_empty());
        assert_eq!(probe.sample_count, 0);
        assert_eq!(probe.verb_noun_entropy(), 0.0);
    }
}
