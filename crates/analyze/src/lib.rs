//! # dj-analyze — analyzer, visualizer, tracer & samplers (paper §4.2, §5.2)
//!
//! The feedback-loop tooling:
//!
//! * [`analyzer`] — whole-dataset probes over the 13 default statistical
//!   dimensions, plus the verb-noun diversity distribution of Fig. 5;
//! * [`visualize`] — terminal histograms, box plots, before/after diff
//!   plots and the OP-pipeline funnel of Fig. 4;
//! * [`tracer`] — dry-run a single OP and report exactly which samples it
//!   would discard / edit / deduplicate (Fig. 4(a));
//! * [`sampler`] — random, stratified (by meta tag or stat quantile) and
//!   diversity-maximizing samplers (the Table 3 selection machinery).

pub mod analyzer;
pub mod sampler;
pub mod tracer;
pub mod visualize;

pub use analyzer::{Analyzer, ColumnSummary, DataProbe, DEFAULT_DIMENSIONS};
pub use sampler::{diversity_sample, random_sample, stratified_by_stat, stratified_sample};
pub use tracer::{trace_op, Effect, TraceReport};
