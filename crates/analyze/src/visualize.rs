//! Terminal visualizations (paper §4.2, Fig. 4): histograms, box plots,
//! before/after distribution diffs and the OP-pipeline funnel — rendered as
//! plain text so they work in logs, CI output and the benchmark harnesses.

use crate::analyzer::ColumnSummary;

/// Render an ASCII histogram of `values` with `bins` buckets.
pub fn histogram(title: &str, values: &[f64], bins: usize, width: usize) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() || bins == 0 {
        return format!("{title}: (no data)\n");
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut counts = vec![0usize; bins];
    if (max - min).abs() < f64::EPSILON {
        counts[0] = finite.len();
    } else {
        for &v in &finite {
            let idx = (((v - min) / (max - min)) * bins as f64) as usize;
            counts[idx.min(bins - 1)] += 1;
        }
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = format!("{title} (n={}, min={min:.3}, max={max:.3})\n", finite.len());
    for (i, &c) in counts.iter().enumerate() {
        let lo = min + (max - min) * i as f64 / bins as f64;
        let bar_len = (c * width).div_ceil(peak).min(width);
        let bar: String = "█".repeat(bar_len);
        out.push_str(&format!("{lo:>10.3} | {bar:<width$} {c}\n"));
    }
    out
}

/// Render an ASCII box plot from a summary.
pub fn box_plot(title: &str, s: &ColumnSummary, width: usize) -> String {
    let span = (s.max - s.min).max(f64::EPSILON);
    let pos = |v: f64| (((v - s.min) / span) * (width - 1) as f64) as usize;
    let (p25, p50, p75) = (pos(s.q25), pos(s.median), pos(s.q75));
    let mut row: Vec<char> = vec![' '; width];
    for slot in row.iter_mut().take(p75 + 1).skip(p25) {
        *slot = '─';
    }
    row[0] = '|';
    row[width - 1] = '|';
    row[p25] = '[';
    row[p75] = ']';
    row[p50] = '•';
    format!(
        "{title}\n  {}\n  min={:.3} q25={:.3} median={:.3} q75={:.3} max={:.3} mean={:.3} std={:.3}\n",
        row.into_iter().collect::<String>(),
        s.min, s.q25, s.median, s.q75, s.max, s.mean, s.std
    )
}

/// Side-by-side distribution diff (Fig. 4(c)): histograms of the same
/// dimension before and after processing, on a shared value axis.
pub fn diff_histogram(
    title: &str,
    before: &[f64],
    after: &[f64],
    bins: usize,
    width: usize,
) -> String {
    let all: Vec<f64> = before
        .iter()
        .chain(after)
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    if all.is_empty() || bins == 0 {
        return format!("{title}: (no data)\n");
    }
    let min = all.iter().copied().fold(f64::INFINITY, f64::min);
    let max = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::EPSILON);
    let bucketize = |vals: &[f64]| {
        let mut counts = vec![0usize; bins];
        for &v in vals.iter().filter(|v| v.is_finite()) {
            let idx = (((v - min) / span) * bins as f64) as usize;
            counts[idx.min(bins - 1)] += 1;
        }
        counts
    };
    let cb = bucketize(before);
    let ca = bucketize(after);
    let peak = cb.iter().chain(&ca).copied().max().unwrap_or(1).max(1);
    let mut out = format!(
        "{title}  [before n={} | after n={}]\n",
        before.len(),
        after.len()
    );
    for i in 0..bins {
        let lo = min + span * i as f64 / bins as f64;
        let bl = (cb[i] * width).div_ceil(peak).min(width);
        let al = (ca[i] * width).div_ceil(peak).min(width);
        out.push_str(&format!(
            "{lo:>10.3} | {:<width$} | {:<width$}\n",
            "▒".repeat(bl),
            "█".repeat(al),
        ));
    }
    out
}

/// The OP-pipeline funnel of Fig. 4(b): samples remaining after each OP.
pub fn funnel(title: &str, stages: &[(String, usize)], width: usize) -> String {
    let mut out = format!("{title}\n");
    let peak = stages.iter().map(|(_, n)| *n).max().unwrap_or(1).max(1);
    let name_w = stages
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(4)
        .min(42);
    for (name, n) in stages {
        let bar_len = (n * width).div_ceil(peak).min(width);
        let display: String = if name.len() > name_w {
            format!("{}…", &name[..name_w.saturating_sub(1)])
        } else {
            name.clone()
        };
        out.push_str(&format!(
            "{display:<name_w$} | {:<width$} {n}\n",
            "█".repeat(bar_len),
        ));
    }
    out
}

/// Two-ring diversity "pie" (Fig. 5), rendered as an indented tree:
/// top verbs with counts, nested top objects.
pub fn verb_noun_tree(title: &str, tops: &[crate::analyzer::VerbObjects]) -> String {
    let mut out = format!("{title}\n");
    let total: usize = tops.iter().map(|(_, c, _)| c).sum();
    for (verb, count, objects) in tops {
        let pct = if total > 0 {
            100.0 * *count as f64 / total as f64
        } else {
            0.0
        };
        out.push_str(&format!("  {verb:<12} {count:>6} ({pct:>5.1}%)\n"));
        for (obj, c) in objects {
            out.push_str(&format!("    └─ {obj:<10} {c:>5}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_renders_all_bins() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = histogram("uniform", &values, 10, 30);
        assert_eq!(h.lines().count(), 11); // title + 10 bins
        assert!(h.contains("n=100"));
        assert!(h.contains('█'));
    }

    #[test]
    fn histogram_empty_and_constant() {
        assert!(histogram("empty", &[], 10, 30).contains("no data"));
        let h = histogram("const", &[5.0; 20], 4, 30);
        assert!(h.contains("20")); // all in one bin
    }

    #[test]
    fn box_plot_contains_markers() {
        let values: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let s = ColumnSummary::from_values(&values).unwrap();
        let b = box_plot("dim", &s, 40);
        assert!(b.contains('['));
        assert!(b.contains(']'));
        assert!(b.contains('•'));
        assert!(b.contains("median=50.000"));
    }

    #[test]
    fn box_plot_survives_marker_collisions() {
        // Heavily skewed data collapses q25/median onto one cell; the plot
        // must still render without panicking.
        let s = ColumnSummary::from_values(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
        let b = box_plot("skewed", &s, 40);
        assert!(b.contains("median=3.000"));
    }

    #[test]
    fn diff_histogram_shows_both_sides() {
        let before: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let after: Vec<f64> = (0..25).map(|i| i as f64).collect();
        let d = diff_histogram("text_len", &before, &after, 5, 20);
        assert!(d.contains("before n=50"));
        assert!(d.contains("after n=25"));
        assert!(d.contains('▒') && d.contains('█'));
    }

    #[test]
    fn funnel_is_monotone_text() {
        let stages = vec![
            ("load".to_string(), 1000),
            ("filter_a".to_string(), 700),
            ("dedup".to_string(), 500),
        ];
        let f = funnel("pipeline", &stages, 20);
        assert!(f.contains("1000"));
        assert!(f.contains("500"));
        assert_eq!(f.lines().count(), 4);
    }

    #[test]
    fn verb_noun_tree_renders() {
        let tops = vec![(
            "write".to_string(),
            10,
            vec![("story".to_string(), 6), ("poem".to_string(), 4)],
        )];
        let t = verb_noun_tree("diversity", &tops);
        assert!(t.contains("write"));
        assert!(t.contains("└─ story"));
        assert!(t.contains("100.0%"));
    }
}
