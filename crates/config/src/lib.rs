//! # dj-config — recipe configuration (paper §5.1)
//!
//! The all-in-one configuration layer:
//!
//! * [`yaml`] — a from-scratch YAML-subset parser/serializer for recipe
//!   files (block maps/lists, scalars, comments);
//! * [`recipe`] — the [`Recipe`] model with "subtraction"/"addition"
//!   editing, registry validation, OP instantiation and stable
//!   fingerprints (the executor's cache keys);
//! * [`recipes`] — a catalog of 20+ built-in recipe templates covering
//!   pre-training, fine-tuning, English, Chinese and domain-specific
//!   scenarios.
//!
//! ## Out-of-core execution
//!
//! Two recipe keys control the executor's spill-to-disk mode for corpora
//! larger than RAM:
//!
//! ```yaml
//! project_name: refine-web-xl
//! np: 8
//! shard_size: 4096          # optional; auto-sized from the budget if omitted
//! memory_budget: 8589934592 # bytes; spill when the dataset estimate exceeds it
//! spill_dir: /scratch/dj    # optional; defaults to the system temp dir
//! process:
//!   - whitespace_normalization_mapper:
//! ```
//!
//! Spilling engages automatically when the dataset's estimated byte size
//! exceeds `memory_budget`: shards stream through each pipeline stage from
//! checksummed frame files with double-buffered prefetch, holding at most
//! `np × 2 × shard_size` samples in memory, and the output is byte-identical
//! to an in-memory run. Omit `memory_budget` (or leave it larger than the
//! dataset) to keep everything in memory. `DJ_MEMORY_BUDGET=<bytes>` in the
//! environment overrides an unset budget — CI uses it to force the spill
//! path through the whole test suite. Both keys participate in the recipe
//! fingerprint, so cached stages invalidate when they change.

pub mod recipe;
pub mod recipes;
pub mod yaml;

pub use recipe::{OpSpec, Recipe};
pub use yaml::{parse_yaml, to_yaml};
