//! # dj-config — recipe configuration (paper §5.1)
//!
//! The all-in-one configuration layer:
//!
//! * [`yaml`] — a from-scratch YAML-subset parser/serializer for recipe
//!   files (block maps/lists, scalars, comments);
//! * [`recipe`] — the [`Recipe`] model with "subtraction"/"addition"
//!   editing, registry validation, OP instantiation and stable
//!   fingerprints (the executor's cache keys);
//! * [`recipes`] — a catalog of 20+ built-in recipe templates covering
//!   pre-training, fine-tuning, English, Chinese and domain-specific
//!   scenarios.

pub mod recipe;
pub mod recipes;
pub mod yaml;

pub use recipe::{OpSpec, Recipe};
pub use yaml::{parse_yaml, to_yaml};
