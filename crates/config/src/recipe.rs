//! Data recipes: the all-in-one configuration of a processing pipeline
//! (paper §5.1).
//!
//! A [`Recipe`] names the project, execution parameters and the ordered OP
//! list with per-OP hyper-parameters. Recipes round-trip through the YAML
//! subset, support the "subtraction"/"addition" editing workflows the paper
//! recommends, and produce a stable fingerprint used as the cache key by the
//! executor (§4.1).

use dj_core::{DjError, OpParams, OpRegistry, Result, Value};

use crate::yaml::{parse_yaml, to_yaml};

/// One OP invocation in a recipe: name plus hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSpec {
    pub name: String,
    pub params: OpParams,
}

impl OpSpec {
    pub fn new(name: &str) -> OpSpec {
        OpSpec {
            name: name.to_string(),
            params: OpParams::new(),
        }
    }

    /// Builder-style parameter setting.
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> OpSpec {
        self.params.insert(key.to_string(), value.into());
        self
    }
}

/// A complete, executable data recipe.
#[derive(Debug, Clone, PartialEq)]
pub struct Recipe {
    /// Project name (config traceability; shows up in cache paths).
    pub project_name: String,
    /// Number of worker processes/threads for the executor.
    pub np: usize,
    /// Target samples per shard for the pipelined executor; `None` lets the
    /// executor auto-shard from `np` (morsel-driven over-partitioning).
    pub shard_size: Option<usize>,
    /// Peak dataset bytes the executor may hold in memory; datasets whose
    /// estimated size exceeds it are spilled to disk and streamed through
    /// stages (out-of-core mode). `None` disables spilling.
    pub memory_budget: Option<u64>,
    /// Directory for spilled shard frames; `None` = the system temp dir.
    pub spill_dir: Option<String>,
    /// Run dedup-barrier clustering (the banded hash exchange) on the
    /// worker pool. `false` forces sequential clustering; the output is
    /// identical either way.
    pub dedup_parallel: bool,
    /// Post-barrier shard fill threshold in `[0, 1]`: shards a dedup mask
    /// thins below this fraction of the pre-barrier average are merged
    /// into a neighbor. `None` uses the executor default (0.5); `0.0`
    /// disables rebalancing.
    pub shard_fill: Option<f64>,
    /// Default text field OPs process.
    pub text_key: String,
    /// Input corpus path or glob (`data/*.jsonl`) for file-backed
    /// execution: the corpus streams straight into the shard machinery
    /// without ever being materialized. `None` = the caller supplies an
    /// in-memory dataset.
    pub input_path: Option<String>,
    /// Output directory for file-backed execution: the processed corpus is
    /// written as manifest-tracked shard parts. `None` = the result is
    /// returned in memory.
    pub output_path: Option<String>,
    /// Egress format for `output_path`: `"jsonl"` (default) or `"frames"`
    /// (raw shard frames, re-ingestable without a decode round-trip).
    pub output_format: Option<String>,
    /// Streaming prefetch depth: shards in flight per worker while stages
    /// stream (`2` = double buffering, the default; `1` disables the
    /// prefetch loader). `None` uses the executor default.
    pub prefetch_depth: Option<usize>,
    /// Adaptive, measurement-driven planning: plan steps ordered from the
    /// persisted cost-model sidecar, mid-run re-planning, measured
    /// barrier gating and knob auto-tuning (default `false`; the
    /// `DJ_ADAPTIVE` env var forces the run-local parts on).
    pub adaptive: bool,
    /// Shards of a pipeline stage to measure before the mid-run replanner
    /// re-ranks the remaining commutable steps. `None` = auto (a quarter
    /// of the stage's shards, clamped to `[1, 8]`). Must be ≥ 1.
    pub replan_after_shards: Option<usize>,
    /// Directory the cost-model sidecar persists under; `None` = the
    /// cache root (when `adaptive` is set and a cache is attached).
    pub stats_dir: Option<String>,
    /// Per-op prefix caching: cache every plan step's output under a
    /// chained prefix fingerprint so editing op `k` resumes ops `0..k`
    /// from cache (default `false`; costs a materialization per step).
    pub prefix_cache: bool,
    /// Columnar shard frames with field-projection pushdown: spilled
    /// shards are stored as per-column `DJSC` frames and each stage
    /// decodes only the columns its OPs' field footprints name, splicing
    /// every other column through byte-for-byte (default `false`; the
    /// `DJ_COLUMNAR` env var forces it on). Output is byte-identical to
    /// the row format.
    pub columnar: bool,
    /// Record-level error policy: `"fail"` (default), `"skip"` or
    /// `"quarantine"`. Under `skip`/`quarantine` a malformed ingest
    /// record or a sample an OP rejects is dropped (and, for quarantine,
    /// preserved in a checksummed sidecar next to the egress manifest)
    /// instead of failing the job.
    pub on_error: Option<String>,
    /// Error budget for `skip`/`quarantine`: the job fails once the
    /// bad-record ratio exceeds this (must be in `[0, 1]`; default 1.0
    /// never trips).
    pub max_error_ratio: Option<f64>,
    /// The ordered OP pipeline.
    pub process: Vec<OpSpec>,
}

impl Default for Recipe {
    fn default() -> Self {
        Recipe {
            project_name: "data-juicer".to_string(),
            np: 1,
            shard_size: None,
            memory_budget: None,
            spill_dir: None,
            dedup_parallel: true,
            shard_fill: None,
            text_key: "text".to_string(),
            input_path: None,
            output_path: None,
            output_format: None,
            prefetch_depth: None,
            adaptive: false,
            replan_after_shards: None,
            stats_dir: None,
            prefix_cache: false,
            columnar: false,
            on_error: None,
            max_error_ratio: None,
            process: Vec::new(),
        }
    }
}

impl Recipe {
    pub fn new(project_name: &str) -> Recipe {
        Recipe {
            project_name: project_name.to_string(),
            ..Recipe::default()
        }
    }

    /// Builder: append an OP.
    pub fn then(mut self, op: OpSpec) -> Recipe {
        self.process.push(op);
        self
    }

    /// Builder: set worker count.
    pub fn with_np(mut self, np: usize) -> Recipe {
        self.np = np.max(1);
        self
    }

    /// Builder: set the target shard size for the pipelined executor.
    pub fn with_shard_size(mut self, shard_size: usize) -> Recipe {
        self.shard_size = Some(shard_size.max(1));
        self
    }

    /// Builder: set the executor's memory budget in bytes (enables
    /// out-of-core spilling when the dataset estimate exceeds it).
    pub fn with_memory_budget(mut self, bytes: u64) -> Recipe {
        self.memory_budget = Some(bytes.max(1));
        self
    }

    /// Builder: set the directory spilled shard frames are written under.
    pub fn with_spill_dir(mut self, dir: impl Into<String>) -> Recipe {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Builder: toggle worker-parallel dedup-barrier clustering.
    pub fn with_dedup_parallel(mut self, enabled: bool) -> Recipe {
        self.dedup_parallel = enabled;
        self
    }

    /// Builder: set the post-barrier shard fill threshold (clamped to
    /// `[0, 1]`).
    pub fn with_shard_fill(mut self, fill: f64) -> Recipe {
        self.shard_fill = Some(fill.clamp(0.0, 1.0));
        self
    }

    /// Builder: set the input corpus path or glob (file-backed execution).
    pub fn with_input_path(mut self, path: impl Into<String>) -> Recipe {
        self.input_path = Some(path.into());
        self
    }

    /// Builder: set the sharded-output directory (file-backed execution).
    pub fn with_output_path(mut self, path: impl Into<String>) -> Recipe {
        self.output_path = Some(path.into());
        self
    }

    /// Builder: set the egress format (`"jsonl"` or `"frames"`).
    pub fn with_output_format(mut self, format: impl Into<String>) -> Recipe {
        self.output_format = Some(format.into());
        self
    }

    /// Builder: set the streaming prefetch depth (floored to 1).
    pub fn with_prefetch_depth(mut self, depth: usize) -> Recipe {
        self.prefetch_depth = Some(depth.max(1));
        self
    }

    /// Builder: toggle adaptive, measurement-driven planning.
    pub fn with_adaptive(mut self, enabled: bool) -> Recipe {
        self.adaptive = enabled;
        self
    }

    /// Builder: set the mid-run replan trigger (shards measured before
    /// re-ranking; floored to 1).
    pub fn with_replan_after_shards(mut self, shards: usize) -> Recipe {
        self.replan_after_shards = Some(shards.max(1));
        self
    }

    /// Builder: set the cost-model sidecar directory.
    pub fn with_stats_dir(mut self, dir: impl Into<String>) -> Recipe {
        self.stats_dir = Some(dir.into());
        self
    }

    /// Builder: toggle per-op prefix caching.
    pub fn with_prefix_cache(mut self, enabled: bool) -> Recipe {
        self.prefix_cache = enabled;
        self
    }

    /// Builder: toggle columnar spilled-shard frames with field-projection
    /// pushdown.
    pub fn with_columnar(mut self, enabled: bool) -> Recipe {
        self.columnar = enabled;
        self
    }

    /// Builder: set the record-level error policy (`"fail"`, `"skip"` or
    /// `"quarantine"`).
    pub fn with_on_error(mut self, policy: impl Into<String>) -> Recipe {
        self.on_error = Some(policy.into());
        self
    }

    /// Builder: set the error-ratio budget (clamped to `[0, 1]`).
    pub fn with_max_error_ratio(mut self, ratio: f64) -> Recipe {
        self.max_error_ratio = Some(ratio.clamp(0.0, 1.0));
        self
    }

    // ---- "subtraction"/"addition" editing (paper §5.1) -----------------

    /// Remove every occurrence of an OP by name; returns how many were
    /// removed ("subtraction" workflow).
    pub fn remove_op(&mut self, name: &str) -> usize {
        let before = self.process.len();
        self.process.retain(|op| op.name != name);
        before - self.process.len()
    }

    /// Insert an OP at `index` (clamped to the pipeline length).
    pub fn insert_op(&mut self, index: usize, op: OpSpec) {
        let idx = index.min(self.process.len());
        self.process.insert(idx, op);
    }

    /// Move the OP at `from` to position `to` (reordering workflow).
    pub fn move_op(&mut self, from: usize, to: usize) -> Result<()> {
        if from >= self.process.len() || to >= self.process.len() {
            return Err(DjError::Config(format!(
                "move_op: index out of range ({from} -> {to}, len {})",
                self.process.len()
            )));
        }
        let op = self.process.remove(from);
        self.process.insert(to, op);
        Ok(())
    }

    /// Set a hyper-parameter on the first OP with the given name
    /// (the Fig. 5 "refine parameters" step).
    pub fn set_param(&mut self, op_name: &str, key: &str, value: Value) -> Result<()> {
        let op = self
            .process
            .iter_mut()
            .find(|op| op.name == op_name)
            .ok_or_else(|| DjError::Config(format!("set_param: no op named `{op_name}`")))?;
        op.params.insert(key.to_string(), value);
        Ok(())
    }

    /// Find an OP by name.
    pub fn op(&self, name: &str) -> Option<&OpSpec> {
        self.process.iter().find(|op| op.name == name)
    }

    // ---- (De)serialization ---------------------------------------------

    /// Parse a recipe from YAML-subset text.
    pub fn from_yaml(text: &str) -> Result<Recipe> {
        let v = parse_yaml(text)?;
        Recipe::from_value(&v)
    }

    /// Parse a recipe from an already-parsed config value.
    pub fn from_value(v: &Value) -> Result<Recipe> {
        let mut recipe = Recipe::default();
        if let Some(name) = v.get_path("project_name").and_then(Value::as_str) {
            recipe.project_name = name.to_string();
        }
        if let Some(np) = v.get_path("np").and_then(Value::as_int) {
            if np < 1 {
                return Err(DjError::Config("np must be >= 1".into()));
            }
            recipe.np = np as usize;
        }
        if let Some(sz) = v.get_path("shard_size").and_then(Value::as_int) {
            if sz < 1 {
                return Err(DjError::Config("shard_size must be >= 1".into()));
            }
            recipe.shard_size = Some(sz as usize);
        }
        if let Some(mb) = v.get_path("memory_budget").and_then(Value::as_int) {
            if mb < 1 {
                return Err(DjError::Config("memory_budget must be >= 1 byte".into()));
            }
            recipe.memory_budget = Some(mb as u64);
        }
        if let Some(dir) = v.get_path("spill_dir").and_then(Value::as_str) {
            recipe.spill_dir = Some(dir.to_string());
        }
        if let Some(dp) = v.get_path("dedup_parallel").and_then(Value::as_bool) {
            recipe.dedup_parallel = dp;
        }
        if let Some(fill) = v.get_path("shard_fill").and_then(Value::as_float) {
            if !(0.0..=1.0).contains(&fill) {
                return Err(DjError::Config("shard_fill must be in [0, 1]".into()));
            }
            recipe.shard_fill = Some(fill);
        }
        if let Some(tk) = v.get_path("text_key").and_then(Value::as_str) {
            recipe.text_key = tk.to_string();
        }
        if let Some(p) = v.get_path("input_path").and_then(Value::as_str) {
            recipe.input_path = Some(p.to_string());
        }
        if let Some(p) = v.get_path("output_path").and_then(Value::as_str) {
            recipe.output_path = Some(p.to_string());
        }
        if let Some(f) = v.get_path("output_format").and_then(Value::as_str) {
            if f != "jsonl" && f != "frames" {
                return Err(DjError::Config(format!(
                    "output_format must be `jsonl` or `frames`, got `{f}`"
                )));
            }
            recipe.output_format = Some(f.to_string());
        }
        if let Some(d) = v.get_path("prefetch_depth").and_then(Value::as_int) {
            if d < 1 {
                return Err(DjError::Config("prefetch_depth must be >= 1".into()));
            }
            recipe.prefetch_depth = Some(d as usize);
        }
        if let Some(a) = v.get_path("adaptive").and_then(Value::as_bool) {
            recipe.adaptive = a;
        }
        if let Some(k) = v.get_path("replan_after_shards").and_then(Value::as_int) {
            if k < 1 {
                return Err(DjError::Config("replan_after_shards must be >= 1".into()));
            }
            recipe.replan_after_shards = Some(k as usize);
        }
        if let Some(dir) = v.get_path("stats_dir").and_then(Value::as_str) {
            recipe.stats_dir = Some(dir.to_string());
        }
        if let Some(pc) = v.get_path("prefix_cache").and_then(Value::as_bool) {
            recipe.prefix_cache = pc;
        }
        if let Some(c) = v.get_path("columnar").and_then(Value::as_bool) {
            recipe.columnar = c;
        }
        if let Some(p) = v.get_path("on_error").and_then(Value::as_str) {
            if !matches!(p, "fail" | "skip" | "quarantine") {
                return Err(DjError::Config(format!(
                    "on_error must be `fail`, `skip` or `quarantine`, got `{p}`"
                )));
            }
            recipe.on_error = Some(p.to_string());
        }
        if let Some(r) = v.get_path("max_error_ratio").and_then(Value::as_float) {
            if !(0.0..=1.0).contains(&r) {
                return Err(DjError::Config("max_error_ratio must be in [0, 1]".into()));
            }
            recipe.max_error_ratio = Some(r);
        }
        let process = match v.get_path("process") {
            None => Vec::new(),
            Some(Value::List(items)) => items
                .iter()
                .enumerate()
                .map(|(i, item)| parse_op_spec(item, i))
                .collect::<Result<Vec<_>>>()?,
            Some(other) => {
                return Err(DjError::Config(format!(
                    "`process` must be a list, got {}",
                    other.kind()
                )))
            }
        };
        recipe.process = process;
        Ok(recipe)
    }

    /// Serialize to the YAML subset.
    pub fn to_yaml(&self) -> String {
        to_yaml(&self.to_value())
    }

    /// Convert to a config [`Value`] tree.
    pub fn to_value(&self) -> Value {
        let mut root = Value::map();
        root.set_path("project_name", Value::from(self.project_name.clone()))
            .expect("map root");
        root.set_path("np", Value::from(self.np)).expect("map root");
        if let Some(sz) = self.shard_size {
            root.set_path("shard_size", Value::from(sz))
                .expect("map root");
        }
        if let Some(mb) = self.memory_budget {
            root.set_path("memory_budget", Value::Int(mb as i64))
                .expect("map root");
        }
        if let Some(dir) = &self.spill_dir {
            root.set_path("spill_dir", Value::from(dir.clone()))
                .expect("map root");
        }
        if !self.dedup_parallel {
            root.set_path("dedup_parallel", Value::Bool(false))
                .expect("map root");
        }
        if let Some(fill) = self.shard_fill {
            root.set_path("shard_fill", Value::Float(fill))
                .expect("map root");
        }
        root.set_path("text_key", Value::from(self.text_key.clone()))
            .expect("map root");
        if let Some(p) = &self.input_path {
            root.set_path("input_path", Value::from(p.clone()))
                .expect("map root");
        }
        if let Some(p) = &self.output_path {
            root.set_path("output_path", Value::from(p.clone()))
                .expect("map root");
        }
        if let Some(f) = &self.output_format {
            root.set_path("output_format", Value::from(f.clone()))
                .expect("map root");
        }
        if let Some(d) = self.prefetch_depth {
            root.set_path("prefetch_depth", Value::from(d))
                .expect("map root");
        }
        if self.adaptive {
            root.set_path("adaptive", Value::Bool(true))
                .expect("map root");
        }
        if let Some(k) = self.replan_after_shards {
            root.set_path("replan_after_shards", Value::from(k))
                .expect("map root");
        }
        if let Some(dir) = &self.stats_dir {
            root.set_path("stats_dir", Value::from(dir.clone()))
                .expect("map root");
        }
        if self.prefix_cache {
            root.set_path("prefix_cache", Value::Bool(true))
                .expect("map root");
        }
        // Emitted only when non-default so existing recipe fingerprints
        // (and therefore cache keys) are unchanged for row-format runs.
        if self.columnar {
            root.set_path("columnar", Value::Bool(true))
                .expect("map root");
        }
        // Same fingerprint-stability rule: only emitted when set.
        if let Some(p) = &self.on_error {
            root.set_path("on_error", Value::from(p.clone()))
                .expect("map root");
        }
        if let Some(r) = self.max_error_ratio {
            root.set_path("max_error_ratio", Value::Float(r))
                .expect("map root");
        }
        let ops: Vec<Value> = self
            .process
            .iter()
            .map(|op| {
                let mut m = Value::map();
                let params = if op.params.is_empty() {
                    Value::Null
                } else {
                    Value::Map(op.params.clone())
                };
                m.set_path(&op.name, params).expect("map root");
                m
            })
            .collect();
        root.set_path("process", Value::List(ops))
            .expect("map root");
        root
    }

    /// Validate every OP against a registry; returns the unknown names.
    pub fn validate(&self, registry: &OpRegistry) -> Vec<String> {
        self.process
            .iter()
            .filter(|op| !registry.contains(&op.name))
            .map(|op| op.name.clone())
            .collect()
    }

    /// Instantiate the pipeline against a registry.
    pub fn build_ops(&self, registry: &OpRegistry) -> Result<Vec<dj_core::Op>> {
        self.process
            .iter()
            .map(|spec| {
                let mut params = spec.params.clone();
                // Propagate the recipe-level text key unless the OP overrides.
                if self.text_key != "text" && !params.contains_key("field") {
                    params.insert("field".into(), Value::from(self.text_key.clone()));
                }
                registry.build(&spec.name, &params)
            })
            .collect()
    }

    /// Stable 64-bit fingerprint of the canonical serialization — the cache
    /// key that lets the executor detect configuration changes (§4.1).
    pub fn fingerprint(&self) -> u64 {
        dj_hash::fnv1a(self.to_yaml().as_bytes())
    }
}

fn parse_op_spec(item: &Value, index: usize) -> Result<OpSpec> {
    let map = item.as_map().ok_or_else(|| {
        DjError::Config(format!(
            "process[{index}] must be a map of op name to params"
        ))
    })?;
    if map.len() != 1 {
        return Err(DjError::Config(format!(
            "process[{index}] must contain exactly one op, found {}",
            map.len()
        )));
    }
    let (name, params) = map.iter().next().expect("len checked");
    let params = match params {
        Value::Null => OpParams::new(),
        Value::Map(m) => m.clone(),
        other => {
            return Err(DjError::Config(format!(
                "params of `{name}` must be a map, got {}",
                other.kind()
            )))
        }
    };
    Ok(OpSpec {
        name: name.clone(),
        params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_recipe() -> Recipe {
        Recipe::new("refine-web")
            .with_np(4)
            .then(OpSpec::new("whitespace_normalization_mapper"))
            .then(
                OpSpec::new("word_repetition_filter")
                    .with("rep_len", 10i64)
                    .with("min_ratio", 0.0)
                    .with("max_ratio", 0.5),
            )
            .then(OpSpec::new("document_deduplicator").with("lowercase", true))
    }

    #[test]
    fn yaml_roundtrip() {
        let r = sample_recipe();
        let text = r.to_yaml();
        let parsed = Recipe::from_yaml(&text).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn paper_style_yaml_parses() {
        let y = r#"
project_name: fig5-refined
np: 2
process:
  - word_repetition_filter:
      rep_len: 3
      min_ratio: 0.0
      max_ratio: 0.23
  - special_characters_filter:
      min_ratio: 0.07
      max_ratio: 0.25
"#;
        let r = Recipe::from_yaml(y).unwrap();
        assert_eq!(r.project_name, "fig5-refined");
        assert_eq!(r.process.len(), 2);
        assert_eq!(
            r.op("word_repetition_filter").unwrap().params["max_ratio"].as_float(),
            Some(0.23)
        );
    }

    #[test]
    fn subtraction_and_addition_editing() {
        let mut r = sample_recipe();
        assert_eq!(r.remove_op("whitespace_normalization_mapper"), 1);
        assert_eq!(r.process.len(), 2);
        r.insert_op(0, OpSpec::new("clean_links_mapper"));
        assert_eq!(r.process[0].name, "clean_links_mapper");
        r.set_param("word_repetition_filter", "max_ratio", Value::Float(0.23))
            .unwrap();
        assert_eq!(
            r.op("word_repetition_filter").unwrap().params["max_ratio"].as_float(),
            Some(0.23)
        );
        assert!(r.set_param("missing_op", "k", Value::Null).is_err());
    }

    #[test]
    fn move_op_reorders() {
        let mut r = sample_recipe();
        r.move_op(2, 0).unwrap();
        assert_eq!(r.process[0].name, "document_deduplicator");
        assert!(r.move_op(9, 0).is_err());
    }

    #[test]
    fn fingerprint_tracks_changes() {
        let r = sample_recipe();
        let fp1 = r.fingerprint();
        assert_eq!(fp1, sample_recipe().fingerprint(), "deterministic");
        let mut r2 = sample_recipe();
        r2.set_param("word_repetition_filter", "max_ratio", Value::Float(0.4))
            .unwrap();
        assert_ne!(fp1, r2.fingerprint());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Recipe::from_yaml("np: 0\n").is_err());
        assert!(Recipe::from_yaml("process: 5\n").is_err());
        assert!(Recipe::from_yaml("process:\n  - 42\n").is_err());
    }

    #[test]
    fn empty_recipe_defaults() {
        let r = Recipe::from_yaml("").unwrap();
        assert_eq!(r.np, 1);
        assert_eq!(r.shard_size, None);
        assert_eq!(r.text_key, "text");
        assert!(r.process.is_empty());
    }

    #[test]
    fn out_of_core_knobs_roundtrip_and_validate() {
        let r = sample_recipe()
            .with_memory_budget(64 << 20)
            .with_spill_dir("/tmp/dj-spill");
        assert_eq!(r.memory_budget, Some(64 << 20));
        assert_eq!(r.spill_dir.as_deref(), Some("/tmp/dj-spill"));
        let parsed = Recipe::from_yaml(&r.to_yaml()).unwrap();
        assert_eq!(parsed, r);
        assert_ne!(
            r.fingerprint(),
            sample_recipe().fingerprint(),
            "out-of-core knobs participate in the cache key"
        );
        let y = Recipe::from_yaml("memory_budget: 1048576\nspill_dir: spill\n").unwrap();
        assert_eq!(y.memory_budget, Some(1 << 20));
        assert_eq!(y.spill_dir.as_deref(), Some("spill"));
        assert!(Recipe::from_yaml("memory_budget: 0\n").is_err());
        let none = Recipe::from_yaml("np: 2\n").unwrap();
        assert_eq!(none.memory_budget, None);
        assert_eq!(none.spill_dir, None);
    }

    #[test]
    fn dedup_knobs_roundtrip_and_validate() {
        let r = sample_recipe()
            .with_dedup_parallel(false)
            .with_shard_fill(0.25);
        assert!(!r.dedup_parallel);
        assert_eq!(r.shard_fill, Some(0.25));
        let parsed = Recipe::from_yaml(&r.to_yaml()).unwrap();
        assert_eq!(parsed, r);
        assert_ne!(
            r.fingerprint(),
            sample_recipe().fingerprint(),
            "dedup knobs participate in the cache key"
        );
        let y = Recipe::from_yaml("dedup_parallel: false\nshard_fill: 0.75\n").unwrap();
        assert!(!y.dedup_parallel);
        assert_eq!(y.shard_fill, Some(0.75));
        assert!(Recipe::from_yaml("shard_fill: 1.5\n").is_err());
        let defaults = Recipe::from_yaml("np: 2\n").unwrap();
        assert!(defaults.dedup_parallel, "parallel barrier is the default");
        assert_eq!(defaults.shard_fill, None);
    }

    #[test]
    fn io_knobs_roundtrip_and_validate() {
        let r = sample_recipe()
            .with_input_path("data/*.jsonl")
            .with_output_path("out/clean")
            .with_output_format("frames")
            .with_prefetch_depth(3);
        assert_eq!(r.input_path.as_deref(), Some("data/*.jsonl"));
        assert_eq!(r.output_path.as_deref(), Some("out/clean"));
        assert_eq!(r.output_format.as_deref(), Some("frames"));
        assert_eq!(r.prefetch_depth, Some(3));
        let parsed = Recipe::from_yaml(&r.to_yaml()).unwrap();
        assert_eq!(parsed, r);
        assert_ne!(
            r.fingerprint(),
            sample_recipe().fingerprint(),
            "io knobs participate in the cache key"
        );
        let y = Recipe::from_yaml(
            "input_path: corpus/*.csv\noutput_path: out\noutput_format: jsonl\nprefetch_depth: 1\n",
        )
        .unwrap();
        assert_eq!(y.input_path.as_deref(), Some("corpus/*.csv"));
        assert_eq!(y.output_format.as_deref(), Some("jsonl"));
        assert_eq!(y.prefetch_depth, Some(1));
        assert!(Recipe::from_yaml("output_format: parquet\n").is_err());
        assert!(Recipe::from_yaml("prefetch_depth: 0\n").is_err());
        let defaults = Recipe::from_yaml("np: 2\n").unwrap();
        assert_eq!(defaults.input_path, None);
        assert_eq!(defaults.output_path, None);
        assert_eq!(defaults.output_format, None);
        assert_eq!(defaults.prefetch_depth, None);
    }

    #[test]
    fn adaptive_knobs_roundtrip_and_validate() {
        let r = sample_recipe()
            .with_adaptive(true)
            .with_replan_after_shards(4)
            .with_stats_dir("stats")
            .with_prefix_cache(true);
        assert!(r.adaptive);
        assert_eq!(r.replan_after_shards, Some(4));
        assert_eq!(r.stats_dir.as_deref(), Some("stats"));
        assert!(r.prefix_cache);
        let parsed = Recipe::from_yaml(&r.to_yaml()).unwrap();
        assert_eq!(parsed, r);
        assert_ne!(
            r.fingerprint(),
            sample_recipe().fingerprint(),
            "adaptive knobs participate in the cache key"
        );
        let y = Recipe::from_yaml(
            "adaptive: true\nreplan_after_shards: 2\nstats_dir: s\nprefix_cache: true\n",
        )
        .unwrap();
        assert!(y.adaptive);
        assert_eq!(y.replan_after_shards, Some(2));
        assert_eq!(y.stats_dir.as_deref(), Some("s"));
        assert!(y.prefix_cache);
        assert!(Recipe::from_yaml("replan_after_shards: 0\n").is_err());
        let defaults = Recipe::from_yaml("np: 2\n").unwrap();
        assert!(!defaults.adaptive, "adaptive planning is opt-in");
        assert_eq!(defaults.replan_after_shards, None);
        assert_eq!(defaults.stats_dir, None);
        assert!(!defaults.prefix_cache);
    }

    #[test]
    fn columnar_knob_roundtrips_and_validates() {
        let r = sample_recipe().with_columnar(true);
        assert!(r.columnar);
        assert!(r.to_yaml().contains("columnar"));
        let parsed = Recipe::from_yaml(&r.to_yaml()).unwrap();
        assert_eq!(parsed, r);
        assert_ne!(
            r.fingerprint(),
            sample_recipe().fingerprint(),
            "columnar participates in the cache key"
        );
        let y = Recipe::from_yaml("columnar: true\n").unwrap();
        assert!(y.columnar);
        let defaults = Recipe::from_yaml("np: 2\n").unwrap();
        assert!(!defaults.columnar, "columnar frames are opt-in");
        assert!(
            !defaults.to_yaml().contains("columnar"),
            "default stays out of the canonical serialization so row-format \
             recipe fingerprints are unchanged"
        );
    }

    #[test]
    fn shard_size_roundtrips_and_validates() {
        let r = sample_recipe().with_shard_size(256);
        assert_eq!(r.shard_size, Some(256));
        let parsed = Recipe::from_yaml(&r.to_yaml()).unwrap();
        assert_eq!(parsed, r);
        assert_ne!(
            r.fingerprint(),
            sample_recipe().fingerprint(),
            "shard_size participates in the cache key"
        );
        let y = Recipe::from_yaml("shard_size: 128\n").unwrap();
        assert_eq!(y.shard_size, Some(128));
        assert!(Recipe::from_yaml("shard_size: 0\n").is_err());
    }
}
