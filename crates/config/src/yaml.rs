//! A YAML-subset parser for recipe configuration files.
//!
//! Data-Juicer recipes are YAML documents (paper §5.1, Fig. 5). This parser
//! covers the subset those recipes use — block maps and lists by indentation,
//! inline scalars, quoted strings, comments — and is implemented from scratch
//! because no YAML crate is in the allowed dependency set (DESIGN.md).
//!
//! Supported:
//! * nested block maps (`key:` + deeper indentation)
//! * block lists (`- item`), including list-of-maps (`- key: value`)
//! * scalars: null/~, true/false, integers, floats, single/double-quoted
//!   and bare strings
//! * the empty flow collections `[]` and `{}` (which have no block form)
//! * `#` comments and blank lines
//!
//! Not supported (by design): anchors/aliases, non-empty flow `{}`/`[]`
//! collections, multi-document streams, block scalars (`|`, `>`), tags.

use dj_core::{DjError, Result, Value};

/// Parse a YAML-subset document into a [`Value`].
pub fn parse_yaml(input: &str) -> Result<Value> {
    let lines: Vec<Line> = input
        .lines()
        .enumerate()
        .filter_map(|(no, raw)| Line::new(no + 1, raw))
        .collect();
    if lines.is_empty() {
        return Ok(Value::map());
    }
    let mut pos = 0;
    let v = parse_block(&lines, &mut pos, lines[0].indent)?;
    if pos != lines.len() {
        return Err(DjError::Parse(format!(
            "yaml: unexpected content at line {} (inconsistent indentation?)",
            lines[pos].no
        )));
    }
    Ok(v)
}

#[derive(Debug, Clone)]
struct Line {
    no: usize,
    indent: usize,
    content: String,
}

impl Line {
    /// Returns None for blank / comment-only lines.
    fn new(no: usize, raw: &str) -> Option<Line> {
        if raw.contains('\t') {
            // Normalize tabs to two spaces to be forgiving with hand edits.
        }
        let expanded = raw.replace('\t', "  ");
        let indent = expanded.len() - expanded.trim_start_matches(' ').len();
        let content = strip_comment(expanded[indent..].trim_end());
        if content.is_empty() {
            return None;
        }
        Some(Line {
            no,
            indent,
            content,
        })
    }
}

/// Remove a trailing `#` comment that is not inside quotes.
fn strip_comment(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut quote: Option<char> = None;
    for c in s.chars() {
        match quote {
            Some(q) => {
                out.push(c);
                if c == q {
                    quote = None;
                }
            }
            None => {
                if c == '\'' || c == '"' {
                    quote = Some(c);
                    out.push(c);
                } else if c == '#' {
                    break;
                } else {
                    out.push(c);
                }
            }
        }
    }
    out.trim_end().to_string()
}

fn parse_block(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Value> {
    if lines[*pos].content.starts_with('-') {
        parse_list(lines, pos, indent)
    } else {
        parse_map(lines, pos, indent)
    }
}

fn parse_map(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Value> {
    let mut map = std::collections::BTreeMap::new();
    while *pos < lines.len() {
        let line = &lines[*pos];
        if line.indent < indent {
            break;
        }
        if line.indent > indent {
            return Err(DjError::Parse(format!(
                "yaml line {}: unexpected deeper indentation",
                line.no
            )));
        }
        if line.content.starts_with("- ") || line.content == "-" {
            break; // a list at this level belongs to the caller
        }
        let (key, rest) = split_key(&line.content, line.no)?;
        *pos += 1;
        let value = if rest.is_empty() {
            // Nested block (if any) is more indented.
            if *pos < lines.len() && lines[*pos].indent > indent {
                parse_block(lines, pos, lines[*pos].indent)?
            } else {
                Value::Null
            }
        } else {
            parse_scalar(&rest)
        };
        if map.insert(key.clone(), value).is_some() {
            return Err(DjError::Parse(format!(
                "yaml line {}: duplicate key `{key}`",
                line.no
            )));
        }
    }
    Ok(Value::Map(map))
}

fn parse_list(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Value> {
    let mut items = Vec::new();
    while *pos < lines.len() {
        let line = &lines[*pos];
        if line.indent != indent || !(line.content.starts_with("- ") || line.content == "-") {
            if line.indent >= indent && !line.content.starts_with('-') {
                break; // caller's map continues
            }
            if line.indent < indent {
                break;
            }
            return Err(DjError::Parse(format!(
                "yaml line {}: malformed list item",
                line.no
            )));
        }
        let inline = line.content[1..].trim_start().to_string();
        let item_indent = line.indent + 2; // conventional two-space nesting
        if inline.is_empty() {
            *pos += 1;
            if *pos < lines.len() && lines[*pos].indent > line.indent {
                items.push(parse_block(lines, pos, lines[*pos].indent)?);
            } else {
                items.push(Value::Null);
            }
        } else if let Ok((key, rest)) = split_key(&inline, line.no) {
            // List item that opens a map: `- key: value` or `- key:`.
            let mut map = std::collections::BTreeMap::new();
            *pos += 1;
            let first = if rest.is_empty() {
                if *pos < lines.len() && lines[*pos].indent > item_indent {
                    parse_block(lines, pos, lines[*pos].indent)?
                } else {
                    Value::Null
                }
            } else {
                parse_scalar(&rest)
            };
            map.insert(key, first);
            // Further keys of the same item sit at item_indent.
            while *pos < lines.len()
                && lines[*pos].indent == item_indent
                && !lines[*pos].content.starts_with("- ")
            {
                let l = &lines[*pos];
                let (k, r) = split_key(&l.content, l.no)?;
                *pos += 1;
                let v = if r.is_empty() {
                    if *pos < lines.len() && lines[*pos].indent > item_indent {
                        parse_block(lines, pos, lines[*pos].indent)?
                    } else {
                        Value::Null
                    }
                } else {
                    parse_scalar(&r)
                };
                if map.insert(k.clone(), v).is_some() {
                    return Err(DjError::Parse(format!(
                        "yaml line {}: duplicate key `{k}`",
                        l.no
                    )));
                }
            }
            items.push(Value::Map(map));
        } else {
            // Plain scalar item.
            items.push(parse_scalar(&inline));
            *pos += 1;
        }
    }
    Ok(Value::List(items))
}

/// Split `key: rest` (the colon must be followed by space or end-of-line).
fn split_key(content: &str, no: usize) -> Result<(String, String)> {
    let mut in_quote: Option<char> = None;
    for (i, c) in content.char_indices() {
        match in_quote {
            Some(q) if c == q => in_quote = None,
            Some(_) => {}
            None if c == '\'' || c == '"' => in_quote = Some(c),
            None if c == ':' => {
                let after = &content[i + 1..];
                if after.is_empty() || after.starts_with(' ') {
                    let key = unquote(content[..i].trim());
                    if key.is_empty() {
                        return Err(DjError::Parse(format!("yaml line {no}: empty key")));
                    }
                    return Ok((key, after.trim().to_string()));
                }
            }
            None => {}
        }
    }
    Err(DjError::Parse(format!(
        "yaml line {no}: expected `key: value`, got `{content}`"
    )))
}

fn unquote(s: &str) -> String {
    let b = s.as_bytes();
    if b.len() >= 2 && (b[0] == b'"' || b[0] == b'\'') && b[b.len() - 1] == b[0] {
        let inner = &s[1..s.len() - 1];
        if b[0] == b'"' {
            return inner
                .replace("\\n", "\n")
                .replace("\\t", "\t")
                .replace("\\\"", "\"")
                .replace("\\\\", "\\");
        }
        return inner.replace("''", "'");
    }
    s.to_string()
}

/// Parse a scalar token into the narrowest [`Value`].
pub fn parse_scalar(s: &str) -> Value {
    let t = s.trim();
    if t.is_empty() || t == "~" || t == "null" {
        return Value::Null;
    }
    // Flow syntax is supported only for the empty collections, which have
    // no block representation.
    if t == "[]" {
        return Value::List(Vec::new());
    }
    if t == "{}" {
        return Value::Map(std::collections::BTreeMap::new());
    }
    if t.starts_with('"') || t.starts_with('\'') {
        return Value::Str(unquote(t));
    }
    match t {
        "true" | "True" => return Value::Bool(true),
        "false" | "False" => return Value::Bool(false),
        _ => {}
    }
    if let Ok(i) = t.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = t.parse::<f64>() {
        return Value::Float(f);
    }
    Value::Str(t.to_string())
}

/// Serialize a [`Value`] back to the YAML subset (inverse of [`parse_yaml`]
/// for values produced by it).
pub fn to_yaml(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, 0, false);
    out
}

fn write_value(out: &mut String, v: &Value, indent: usize, inline_context: bool) {
    match v {
        Value::Map(m) if !inline_context => {
            for (k, val) in m {
                write_entry(out, k, val, indent);
            }
        }
        _ => out.push_str(&scalar_to_yaml(v)),
    }
}

fn write_entry(out: &mut String, key: &str, val: &Value, indent: usize) {
    let pad = " ".repeat(indent);
    match val {
        Value::Map(m) if m.is_empty() => out.push_str(&format!("{pad}{key}: {{}}\n")),
        Value::List(l) if l.is_empty() => out.push_str(&format!("{pad}{key}: []\n")),
        Value::Map(m) => {
            out.push_str(&format!("{pad}{key}:\n"));
            for (k, v) in m {
                write_entry(out, k, v, indent + 2);
            }
        }
        Value::List(items) => {
            out.push_str(&format!("{pad}{key}:\n"));
            for item in items {
                write_list_item(out, item, indent + 2);
            }
        }
        scalar => out.push_str(&format!("{pad}{key}: {}\n", scalar_to_yaml(scalar))),
    }
}

fn write_list_item(out: &mut String, item: &Value, indent: usize) {
    let pad = " ".repeat(indent);
    match item {
        Value::Map(m) if m.is_empty() => out.push_str(&format!("{pad}- {{}}\n")),
        Value::List(l) if l.is_empty() => out.push_str(&format!("{pad}- []\n")),
        Value::Map(m) => {
            let mut first = true;
            for (k, v) in m {
                if first {
                    match v {
                        Value::Map(m2) if m2.is_empty() => {
                            out.push_str(&format!("{pad}- {k}: {{}}\n"))
                        }
                        Value::List(l2) if l2.is_empty() => {
                            out.push_str(&format!("{pad}- {k}: []\n"))
                        }
                        Value::Map(_) | Value::List(_) => {
                            out.push_str(&format!("{pad}- {k}:\n"));
                            write_nested(out, v, indent + 4);
                        }
                        scalar => {
                            out.push_str(&format!("{pad}- {k}: {}\n", scalar_to_yaml(scalar)))
                        }
                    }
                    first = false;
                } else {
                    write_entry(out, k, v, indent + 2);
                }
            }
            if first {
                out.push_str(&format!("{pad}-\n")); // empty map item
            }
        }
        Value::List(_) => {
            out.push_str(&format!("{pad}-\n"));
            write_nested(out, item, indent + 2);
        }
        scalar => out.push_str(&format!("{pad}- {}\n", scalar_to_yaml(scalar))),
    }
}

fn write_nested(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Map(m) if m.is_empty() => out.push_str(&format!("{}{{}}\n", " ".repeat(indent))),
        Value::List(l) if l.is_empty() => out.push_str(&format!("{}[]\n", " ".repeat(indent))),
        Value::Map(m) => {
            for (k, val) in m {
                write_entry(out, k, val, indent);
            }
        }
        Value::List(items) => {
            for item in items {
                write_list_item(out, item, indent);
            }
        }
        scalar => {
            out.push_str(&format!(
                "{}{}\n",
                " ".repeat(indent),
                scalar_to_yaml(scalar)
            ));
        }
    }
}

fn scalar_to_yaml(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Str(s) => {
            let needs_quoting = s.is_empty()
                || s.contains(':')
                || s.contains('#')
                || s.contains('\n')
                || s.starts_with(['-', '"', '\'', ' '])
                || s.ends_with(' ')
                || matches!(s.as_str(), "true" | "false" | "null" | "~")
                || s.parse::<f64>().is_ok();
            if needs_quoting {
                format!(
                    "\"{}\"",
                    s.replace('\\', "\\\\")
                        .replace('"', "\\\"")
                        .replace('\n', "\\n")
                )
            } else {
                s.clone()
            }
        }
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RECIPE: &str = r#"
# Data-Juicer style recipe
project_name: demo-recipe
np: 4
text_key: text
process:
  - whitespace_normalization_mapper:
  - word_repetition_filter:
      rep_len: 10
      min_ratio: 0.0
      max_ratio: 0.5
  - special_characters_filter:
      min_ratio: 0.0
      max_ratio: 0.25
  - document_deduplicator:
      lowercase: true
"#;

    #[test]
    fn parses_recipe_shape() {
        let v = parse_yaml(RECIPE).unwrap();
        assert_eq!(
            v.get_path("project_name").unwrap().as_str(),
            Some("demo-recipe")
        );
        assert_eq!(v.get_path("np").unwrap().as_int(), Some(4));
        let ops = v.get_path("process").unwrap().as_list().unwrap();
        assert_eq!(ops.len(), 4);
        assert!(ops[0].get_path("whitespace_normalization_mapper").unwrap() == &Value::Null);
        assert_eq!(
            ops[1]
                .get_path("word_repetition_filter.rep_len")
                .unwrap()
                .as_int(),
            Some(10)
        );
        assert_eq!(
            ops[3]
                .get_path("document_deduplicator.lowercase")
                .unwrap()
                .as_bool(),
            Some(true)
        );
    }

    #[test]
    fn scalars_parse_to_narrowest_type() {
        assert_eq!(parse_scalar("42"), Value::Int(42));
        assert_eq!(parse_scalar("-3.5"), Value::Float(-3.5));
        assert_eq!(parse_scalar("true"), Value::Bool(true));
        assert_eq!(parse_scalar("~"), Value::Null);
        assert_eq!(
            parse_scalar("hello world"),
            Value::Str("hello world".into())
        );
        assert_eq!(
            parse_scalar("'quoted: str'"),
            Value::Str("quoted: str".into())
        );
        assert_eq!(parse_scalar("\"a\\nb\""), Value::Str("a\nb".into()));
    }

    #[test]
    fn lists_of_scalars() {
        let v = parse_yaml("tags:\n  - EN\n  - ZH\n  - 3\n").unwrap();
        let tags = v.get_path("tags").unwrap().as_list().unwrap();
        assert_eq!(tags.len(), 3);
        assert_eq!(tags[2].as_int(), Some(3));
    }

    #[test]
    fn nested_maps() {
        let y = "a:\n  b:\n    c: 1\n  d: 2\ne: 3\n";
        let v = parse_yaml(y).unwrap();
        assert_eq!(v.get_path("a.b.c").unwrap().as_int(), Some(1));
        assert_eq!(v.get_path("a.d").unwrap().as_int(), Some(2));
        assert_eq!(v.get_path("e").unwrap().as_int(), Some(3));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let y = "# header\n\na: 1 # trailing\n\n# middle\nb: 'has # inside'\n";
        let v = parse_yaml(y).unwrap();
        assert_eq!(v.get_path("a").unwrap().as_int(), Some(1));
        assert_eq!(v.get_path("b").unwrap().as_str(), Some("has # inside"));
    }

    #[test]
    fn rejects_duplicates_and_bad_shape() {
        assert!(parse_yaml("a: 1\na: 2\n").is_err());
        assert!(parse_yaml("just a bare scalar line\n").is_err());
    }

    #[test]
    fn empty_document_is_empty_map() {
        assert_eq!(parse_yaml("").unwrap(), Value::map());
        assert_eq!(parse_yaml("# only comments\n\n").unwrap(), Value::map());
    }

    #[test]
    fn roundtrip_recipe() {
        let v = parse_yaml(RECIPE).unwrap();
        let emitted = to_yaml(&v);
        let reparsed = parse_yaml(&emitted).unwrap();
        assert_eq!(reparsed, v, "roundtrip failed; emitted:\n{emitted}");
    }

    #[test]
    fn roundtrip_tricky_strings() {
        let mut v = Value::map();
        v.set_path("a", Value::from("plain")).unwrap();
        v.set_path("b", Value::from("with: colon")).unwrap();
        v.set_path("c", Value::from("3.14")).unwrap();
        v.set_path("d", Value::from("true")).unwrap();
        v.set_path("e", Value::from("")).unwrap();
        let reparsed = parse_yaml(&to_yaml(&v)).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn list_of_maps_with_multiple_keys() {
        let y = "ops:\n  - name: alpha\n    weight: 0.5\n  - name: beta\n    weight: 1.5\n";
        let v = parse_yaml(y).unwrap();
        let ops = v.get_path("ops").unwrap().as_list().unwrap();
        assert_eq!(ops[0].get_path("name").unwrap().as_str(), Some("alpha"));
        assert_eq!(ops[1].get_path("weight").unwrap().as_float(), Some(1.5));
    }
}
