//! Built-in data recipes — the "more than 20 high-quality and diverse data
//! recipes for pre-training, fine-tuning, English, Chinese, etc." of §5.1.
//!
//! Each function returns a ready-to-run [`Recipe`] whose OP names resolve
//! against `dj_ops::builtin_registry()`. The catalog is the "subtraction"
//! starting point: take one, remove/re-order OPs and tune parameters.

use crate::recipe::{OpSpec, Recipe};

/// Names of all built-in recipes, in catalog order.
pub fn catalog() -> Vec<&'static str> {
    vec![
        "pretrain-commoncrawl-refine",
        "pretrain-c4-refine",
        "pretrain-wikipedia-refine",
        "pretrain-books-refine",
        "pretrain-arxiv-refine",
        "pretrain-github-code-refine",
        "pretrain-stackexchange-refine",
        "pretrain-pile-merge",
        "pretrain-redpajama-merge",
        "pretrain-chinese-web-refine",
        "finetune-en-cft",
        "finetune-en-ift",
        "finetune-zh-cft",
        "finetune-multilingual",
        "finetune-dialog-multiround",
        "finetune-preference",
        "domain-financial",
        "domain-medical",
        "domain-legal",
        "domain-reading-assistant",
        "domain-character-dialog",
        "dedup-aggressive",
        "quality-strict",
        "minimal-clean",
    ]
}

/// Look a built-in recipe up by name.
pub fn by_name(name: &str) -> Option<Recipe> {
    let r = match name {
        "pretrain-commoncrawl-refine" => commoncrawl_refine(),
        "pretrain-c4-refine" => c4_refine(),
        "pretrain-wikipedia-refine" => wikipedia_refine(),
        "pretrain-books-refine" => books_refine(),
        "pretrain-arxiv-refine" => arxiv_refine(),
        "pretrain-github-code-refine" => github_code_refine(),
        "pretrain-stackexchange-refine" => stackexchange_refine(),
        "pretrain-pile-merge" => pile_merge(),
        "pretrain-redpajama-merge" => redpajama_merge(),
        "pretrain-chinese-web-refine" => chinese_web_refine(),
        "finetune-en-cft" => finetune_en_cft(),
        "finetune-en-ift" => finetune_en_ift(),
        "finetune-zh-cft" => finetune_zh_cft(),
        "finetune-multilingual" => finetune_multilingual(),
        "finetune-dialog-multiround" => finetune_dialog_multiround(),
        "finetune-preference" => finetune_preference(),
        "domain-financial" => domain_financial(),
        "domain-medical" => domain_medical(),
        "domain-legal" => domain_legal(),
        "domain-reading-assistant" => domain_reading_assistant(),
        "domain-character-dialog" => domain_character_dialog(),
        "dedup-aggressive" => dedup_aggressive(),
        "quality-strict" => quality_strict(),
        "minimal-clean" => minimal_clean(),
        _ => return None,
    };
    Some(r)
}

/// The flagship CommonCrawl refinement recipe (the Fig. 5 style pipeline).
pub fn commoncrawl_refine() -> Recipe {
    Recipe::new("pretrain-commoncrawl-refine")
        .then(OpSpec::new("fix_unicode_mapper"))
        .then(OpSpec::new("punctuation_normalization_mapper"))
        .then(OpSpec::new("clean_html_mapper"))
        .then(OpSpec::new("clean_links_mapper"))
        .then(OpSpec::new("clean_email_mapper"))
        .then(OpSpec::new("clean_ip_mapper"))
        .then(OpSpec::new("whitespace_normalization_mapper"))
        .then(OpSpec::new("remove_long_words_mapper").with("max_len", 30i64))
        .then(
            OpSpec::new("text_length_filter")
                .with("min_len", 50.0)
                .with("max_len", 200000.0),
        )
        .then(
            OpSpec::new("word_num_filter")
                .with("min_num", 10.0)
                .with("max_num", 100000.0),
        )
        .then(
            OpSpec::new("character_repetition_filter")
                .with("ngram", 10i64)
                .with("max_ratio", 0.3),
        )
        .then(
            OpSpec::new("word_repetition_filter")
                .with("rep_len", 10i64)
                .with("max_ratio", 0.3),
        )
        .then(
            OpSpec::new("special_characters_filter")
                .with("min_ratio", 0.0)
                .with("max_ratio", 0.25),
        )
        .then(OpSpec::new("stopwords_filter").with("min_ratio", 0.1))
        .then(OpSpec::new("flagged_words_filter").with("max_ratio", 0.01))
        .then(
            OpSpec::new("language_id_score_filter")
                .with("lang", "en")
                .with("min_score", 0.4),
        )
        .then(OpSpec::new("perplexity_filter").with("max_ppl", 8000.0))
        .then(OpSpec::new("document_deduplicator").with("lowercase", true))
        .then(OpSpec::new("document_minhash_deduplicator").with("jaccard_threshold", 0.7))
}

/// C4-style refinement: lighter cleaning, same dedup.
pub fn c4_refine() -> Recipe {
    let mut r = commoncrawl_refine();
    r.project_name = "pretrain-c4-refine".into();
    r.remove_op("clean_html_mapper");
    r.set_param("perplexity_filter", "max_ppl", 10000.0.into())
        .expect("op present");
    r
}

pub fn wikipedia_refine() -> Recipe {
    Recipe::new("pretrain-wikipedia-refine")
        .then(OpSpec::new("fix_unicode_mapper"))
        .then(OpSpec::new("whitespace_normalization_mapper"))
        .then(OpSpec::new("remove_table_text_mapper"))
        .then(
            OpSpec::new("text_length_filter")
                .with("min_len", 100.0)
                .with("max_len", 500000.0),
        )
        .then(OpSpec::new("special_characters_filter").with("max_ratio", 0.2))
        .then(OpSpec::new("document_deduplicator"))
}

pub fn books_refine() -> Recipe {
    Recipe::new("pretrain-books-refine")
        .then(OpSpec::new("fix_unicode_mapper"))
        .then(OpSpec::new("whitespace_normalization_mapper"))
        .then(
            OpSpec::new("word_num_filter")
                .with("min_num", 200.0)
                .with("max_num", 2000000.0),
        )
        .then(
            OpSpec::new("average_word_length_filter")
                .with("min_len", 2.5)
                .with("max_len", 10.0),
        )
        .then(OpSpec::new("document_simhash_deduplicator").with("max_distance", 4i64))
}

pub fn arxiv_refine() -> Recipe {
    Recipe::new("pretrain-arxiv-refine")
        .then(OpSpec::new("remove_header_mapper"))
        .then(OpSpec::new("expand_macro_mapper"))
        .then(OpSpec::new("remove_comments_mapper"))
        .then(OpSpec::new("remove_bibliography_mapper"))
        .then(OpSpec::new("whitespace_normalization_mapper"))
        .then(
            OpSpec::new("text_length_filter")
                .with("min_len", 200.0)
                .with("max_len", 1000000.0),
        )
        .then(OpSpec::new("document_deduplicator"))
}

pub fn github_code_refine() -> Recipe {
    Recipe::new("pretrain-github-code-refine")
        .then(OpSpec::new("fix_unicode_mapper"))
        .then(OpSpec::new("remove_long_words_mapper").with("max_len", 120i64))
        .then(OpSpec::new("star_count_filter").with("min_stars", 10i64))
        .then(
            OpSpec::new("maximum_line_length_filter")
                .with("min_len", 1.0)
                .with("max_len", 1000.0),
        )
        .then(
            OpSpec::new("alphanumeric_ratio_filter")
                .with("min_ratio", 0.3)
                .with("max_ratio", 1.0),
        )
        .then(OpSpec::new("document_deduplicator"))
}

pub fn stackexchange_refine() -> Recipe {
    Recipe::new("pretrain-stackexchange-refine")
        .then(OpSpec::new("clean_html_mapper"))
        .then(OpSpec::new("clean_links_mapper"))
        .then(OpSpec::new("whitespace_normalization_mapper"))
        .then(
            OpSpec::new("word_num_filter")
                .with("min_num", 10.0)
                .with("max_num", 100000.0),
        )
        .then(OpSpec::new("document_deduplicator").with("lowercase", true))
}

/// Merge-and-refine over Pile-style mixed sources.
pub fn pile_merge() -> Recipe {
    Recipe::new("pretrain-pile-merge")
        .then(OpSpec::new("fix_unicode_mapper"))
        .then(OpSpec::new("whitespace_normalization_mapper"))
        .then(
            OpSpec::new("text_length_filter")
                .with("min_len", 50.0)
                .with("max_len", 1000000.0),
        )
        .then(OpSpec::new("flagged_words_filter").with("max_ratio", 0.02))
        .then(OpSpec::new("document_deduplicator").with("lowercase", true))
        .then(OpSpec::new("document_minhash_deduplicator").with("jaccard_threshold", 0.8))
}

/// Merge-and-refine over RedPajama-style mixed sources.
pub fn redpajama_merge() -> Recipe {
    let mut r = pile_merge();
    r.project_name = "pretrain-redpajama-merge".into();
    r.insert_op(2, OpSpec::new("clean_links_mapper"));
    r
}

pub fn chinese_web_refine() -> Recipe {
    Recipe::new("pretrain-chinese-web-refine")
        .then(OpSpec::new("fix_unicode_mapper"))
        .then(OpSpec::new("punctuation_normalization_mapper"))
        .then(OpSpec::new("whitespace_normalization_mapper"))
        .then(
            OpSpec::new("language_id_score_filter")
                .with("lang", "zh")
                .with("min_score", 0.4),
        )
        .then(
            OpSpec::new("character_repetition_filter")
                .with("ngram", 4i64)
                .with("max_ratio", 0.4),
        )
        .then(
            OpSpec::new("text_length_filter")
                .with("min_len", 20.0)
                .with("max_len", 100000.0),
        )
        .then(OpSpec::new("document_deduplicator"))
}

pub fn finetune_en_cft() -> Recipe {
    Recipe::new("finetune-en-cft")
        .then(
            OpSpec::new("meta_tag_filter")
                .with("key", "language")
                .with("allowed", vec!["EN"]),
        )
        .then(OpSpec::new("fix_unicode_mapper"))
        .then(OpSpec::new("whitespace_normalization_mapper"))
        .then(
            OpSpec::new("text_length_filter")
                .with("min_len", 20.0)
                .with("max_len", 20000.0),
        )
        .then(
            OpSpec::new("word_num_filter")
                .with("min_num", 5.0)
                .with("max_num", 5000.0),
        )
        .then(OpSpec::new("action_verb_filter").with("min_pairs", 1i64))
        .then(OpSpec::new("flagged_words_filter").with("max_ratio", 0.0))
        .then(OpSpec::new("document_deduplicator").with("lowercase", true))
}

pub fn finetune_en_ift() -> Recipe {
    let mut r = finetune_en_cft();
    r.project_name = "finetune-en-ift".into();
    r.remove_op("action_verb_filter");
    r.insert_op(
        0,
        OpSpec::new("meta_tag_filter")
            .with("key", "usage")
            .with("allowed", vec!["IFT"]),
    );
    r
}

pub fn finetune_zh_cft() -> Recipe {
    Recipe::new("finetune-zh-cft")
        .then(
            OpSpec::new("meta_tag_filter")
                .with("key", "language")
                .with("allowed", vec!["ZH"]),
        )
        .then(OpSpec::new("fix_unicode_mapper"))
        .then(OpSpec::new("punctuation_normalization_mapper"))
        .then(
            OpSpec::new("text_length_filter")
                .with("min_len", 10.0)
                .with("max_len", 20000.0),
        )
        .then(
            OpSpec::new("character_repetition_filter")
                .with("ngram", 4i64)
                .with("max_ratio", 0.35),
        )
        .then(OpSpec::new("document_deduplicator"))
}

pub fn finetune_multilingual() -> Recipe {
    Recipe::new("finetune-multilingual")
        .then(
            OpSpec::new("meta_tag_filter")
                .with("key", "language")
                .with("allowed", vec!["EN", "ZH", "Multilingual"]),
        )
        .then(OpSpec::new("fix_unicode_mapper"))
        .then(OpSpec::new("whitespace_normalization_mapper"))
        .then(
            OpSpec::new("text_length_filter")
                .with("min_len", 10.0)
                .with("max_len", 50000.0),
        )
        .then(OpSpec::new("document_deduplicator"))
}

pub fn finetune_dialog_multiround() -> Recipe {
    Recipe::new("finetune-dialog-multiround")
        .then(
            OpSpec::new("meta_tag_filter")
                .with("key", "usage")
                .with("allowed", vec!["CFT-MR"]),
        )
        .then(OpSpec::new("whitespace_normalization_mapper"))
        .then(
            OpSpec::new("word_num_filter")
                .with("min_num", 10.0)
                .with("max_num", 20000.0),
        )
        .then(OpSpec::new("document_deduplicator"))
}

pub fn finetune_preference() -> Recipe {
    Recipe::new("finetune-preference")
        .then(
            OpSpec::new("meta_tag_filter")
                .with("key", "usage")
                .with("allowed", vec!["CFT-P"]),
        )
        .then(OpSpec::new("whitespace_normalization_mapper"))
        .then(OpSpec::new("flagged_words_filter").with("max_ratio", 0.0))
        .then(OpSpec::new("document_deduplicator"))
}

/// Financial-domain recipe: digits are expected (paper §7.3 — "accommodate
/// data that includes numerous digits and standardized terminology").
pub fn domain_financial() -> Recipe {
    Recipe::new("domain-financial")
        .then(OpSpec::new("fix_unicode_mapper"))
        .then(OpSpec::new("whitespace_normalization_mapper"))
        .then(
            OpSpec::new("spec_numerals_filter")
                .with("min_ratio", 0.0)
                .with("max_ratio", 0.6),
        )
        .then(
            OpSpec::new("text_length_filter")
                .with("min_len", 30.0)
                .with("max_len", 100000.0),
        )
        .then(OpSpec::new("document_deduplicator"))
}

pub fn domain_medical() -> Recipe {
    let mut r = domain_financial();
    r.project_name = "domain-medical".into();
    r.set_param("spec_numerals_filter", "max_ratio", 0.4.into())
        .expect("present");
    r.insert_op(
        3,
        OpSpec::new("flagged_words_filter").with("max_ratio", 0.0),
    );
    r
}

pub fn domain_legal() -> Recipe {
    let mut r = domain_financial();
    r.project_name = "domain-legal".into();
    r.set_param("text_length_filter", "min_len", 100.0.into())
        .expect("present");
    r
}

/// Reading assistance: long coherent documents (paper §7.3 — "extended text
/// lengths and coherent structures").
pub fn domain_reading_assistant() -> Recipe {
    Recipe::new("domain-reading-assistant")
        .then(OpSpec::new("fix_unicode_mapper"))
        .then(OpSpec::new("whitespace_normalization_mapper"))
        .then(
            OpSpec::new("word_num_filter")
                .with("min_num", 500.0)
                .with("max_num", 2000000.0),
        )
        .then(
            OpSpec::new("paragraph_count_filter")
                .with("min_num", 3.0)
                .with("max_num", 100000.0),
        )
        .then(
            OpSpec::new("word_entropy_filter")
                .with("min_entropy", 3.0)
                .with("max_entropy", 1000.0),
        )
        .then(OpSpec::new("document_deduplicator"))
}

/// Character customization: dialogue-rich, diverse data (paper §7.3).
pub fn domain_character_dialog() -> Recipe {
    Recipe::new("domain-character-dialog")
        .then(OpSpec::new("whitespace_normalization_mapper"))
        .then(
            OpSpec::new("word_num_filter")
                .with("min_num", 10.0)
                .with("max_num", 50000.0),
        )
        .then(
            OpSpec::new("word_entropy_filter")
                .with("min_entropy", 2.0)
                .with("max_entropy", 1000.0),
        )
        .then(OpSpec::new("flagged_words_filter").with("max_ratio", 0.0))
        .then(OpSpec::new("document_deduplicator").with("lowercase", true))
}

pub fn dedup_aggressive() -> Recipe {
    Recipe::new("dedup-aggressive")
        .then(
            OpSpec::new("document_deduplicator")
                .with("lowercase", true)
                .with("ignore_non_alnum", true),
        )
        .then(OpSpec::new("paragraph_deduplicator"))
        .then(OpSpec::new("document_minhash_deduplicator").with("jaccard_threshold", 0.6))
        .then(OpSpec::new("document_simhash_deduplicator").with("max_distance", 4i64))
}

pub fn quality_strict() -> Recipe {
    Recipe::new("quality-strict")
        .then(OpSpec::new("whitespace_normalization_mapper"))
        .then(OpSpec::new("quality_score_filter").with("min_score", 0.7))
        .then(OpSpec::new("perplexity_filter").with("max_ppl", 3000.0))
        .then(OpSpec::new("stopwords_filter").with("min_ratio", 0.15))
        .then(OpSpec::new("document_deduplicator"))
}

pub fn minimal_clean() -> Recipe {
    Recipe::new("minimal-clean")
        .then(OpSpec::new("whitespace_normalization_mapper"))
        .then(
            OpSpec::new("text_length_filter")
                .with("min_len", 1.0)
                .with("max_len", 1e9),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_paper_scale() {
        assert!(catalog().len() > 20, "catalog size {}", catalog().len());
    }

    #[test]
    fn every_catalog_entry_resolves() {
        for name in catalog() {
            let r = by_name(name).unwrap_or_else(|| panic!("missing recipe {name}"));
            assert_eq!(r.project_name, name);
            assert!(!r.process.is_empty(), "{name} has an empty pipeline");
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn recipes_roundtrip_through_yaml() {
        for name in catalog() {
            let r = by_name(name).unwrap();
            let parsed = crate::recipe::Recipe::from_yaml(&r.to_yaml()).unwrap();
            assert_eq!(parsed, r, "roundtrip failed for {name}");
        }
    }
}
