//! The Fig. 5 showcase: the six-step "Data-in-the-LLMdev-Loop".
//!
//! 1. analyze the original dataset (probe + verb-noun diversity pie);
//! 2. refine the recipe parameters based on the probe;
//! 3. process the data with the refined recipe;
//! 4. analyze the refined dataset and compare;
//! 5. "train" (proxy-evaluate) an LLM on the refined data;
//! 6. collate against reference models on the leaderboard.
//!
//! Run with: `cargo run --example feedback_loop`

use data_juicer::analyze::visualize;
use data_juicer::eval::{measure_profile, Leaderboard, ProxyLlm, ReferenceModel};
use data_juicer::prelude::*;
use data_juicer::synth::{ift_subset, IftSubsetSpec};

fn main() -> Result<()> {
    // An instruction dataset with the weaknesses Fig. 5 uncovers: low
    // expression diversity and junky short responses.
    let mut original = ift_subset(
        5,
        &IftSubsetSpec::new("raw-ift", 1500)
            .diversity(0.25)
            .junk_rate(0.3),
    );

    // ---- Step 1: analyze the original dataset -------------------------
    let probe = Analyzer::new().probe(&mut original);
    println!(
        "STEP 1 — original data probe ({} samples)",
        probe.sample_count
    );
    print!(
        "{}",
        visualize::verb_noun_tree(
            "top root verbs and their direct objects",
            &probe.top_verbs(5, 3)
        )
    );
    println!("verb-noun entropy: {:.2} bits\n", probe.verb_noun_entropy());

    // ---- Step 2: refine the recipe parameters -------------------------
    // The probe shows junk (very short responses) and repetition: tighten
    // word_repetition and length thresholds — the exact edit Fig. 5 shows
    // (rep_len 10→3, max_ratio 0.5→0.23).
    let mut recipe = Recipe::new("ift-refine")
        .then(OpSpec::new("whitespace_normalization_mapper"))
        .then(
            OpSpec::new("word_repetition_filter")
                .with("rep_len", 10i64)
                .with("max_ratio", 0.5),
        )
        .then(
            OpSpec::new("text_length_filter")
                .with("min_len", 5.0)
                .with("max_len", 1e6),
        )
        .then(OpSpec::new("document_deduplicator"));
    println!("STEP 2 — refining recipe parameters");
    recipe.set_param("word_repetition_filter", "rep_len", Value::Int(3))?;
    recipe.set_param("word_repetition_filter", "max_ratio", Value::Float(0.23))?;
    recipe.set_param("text_length_filter", "min_len", Value::Float(40.0))?;
    println!("{}", recipe.to_yaml());

    // ---- Step 3: process with the refined recipe ----------------------
    let ops = recipe.build_ops(&builtin_registry())?;
    let (mut refined, report) = Executor::new(ops).run(original.clone())?;
    println!(
        "STEP 3 — processed: {} -> {} samples",
        report.initial_samples,
        refined.len()
    );

    // ---- Step 4: analyze the refined dataset --------------------------
    let probe_after = Analyzer::new().probe(&mut refined);
    println!(
        "\nSTEP 4 — mean response length {:.0} -> {:.0} chars; junk gone",
        probe.summaries["text_len"].mean, probe_after.summaries["text_len"].mean
    );

    // ---- Step 5: train/evaluate on the refined data -------------------
    let llm = ProxyLlm::new();
    let base = measure_profile(&mut original.clone(), 2.0e6);
    let refined_profile = measure_profile(&mut refined, 2.0e6);
    let before = llm.evaluate("LLM(original)", &base, 50.0);
    let after = llm.evaluate("LLM(refined)", &refined_profile, 50.0);
    println!(
        "STEP 5 — proxy avg score: original {:.2} vs refined {:.2}",
        before.average(),
        after.average()
    );

    // ---- Step 6: collate on the leaderboard ---------------------------
    let mut lb = Leaderboard::with_published_baselines();
    lb.register(ReferenceModel {
        name: "LLM(refined)".into(),
        training_data: "ift-refine recipe".into(),
        tokens_b: 50.0,
        result: after.clone(),
    });
    println!("\nSTEP 6 — data leaderboard:\n{}", lb.render());

    assert!(
        after.average() >= before.average(),
        "the loop must not regress"
    );
    println!("feedback loop complete: refined recipe registered as a reference model.");
    Ok(())
}
