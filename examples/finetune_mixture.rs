//! Fine-tuning data mixture: filter a tagged Alpaca-CoT-style collection by
//! meta tags, refine it, diversity-sample a compact subset, and confirm via
//! the pairwise judge that the refined subset beats a random one — the
//! Table 3 workflow end to end.
//!
//! Run with: `cargo run --example finetune_mixture`

use data_juicer::analyze::{diversity_sample, random_sample};
use data_juicer::config::recipes;
use data_juicer::eval::{measure_profile, Judge, TunedModel};
use data_juicer::prelude::*;
use data_juicer::synth::alpaca_cot_collection;

fn main() -> Result<()> {
    // The candidate pool: 17 tagged subsets (Table 8's taxonomy).
    let collection = alpaca_cot_collection(7, 40);
    let mut pool = Dataset::new();
    for (spec, ds) in collection {
        println!(
            "  subset {:<22} lang={:<12} usage={:<7} {:>5} samples",
            spec.name,
            spec.language,
            spec.usage,
            ds.len()
        );
        pool.extend(ds);
    }
    // Real collections republish each other and carry junky scrapes:
    // pollute the pool the same way.
    pool.extend(pool.take(pool.len() / 4));
    pool.extend(data_juicer::synth::ift_subset(
        17,
        &data_juicer::synth::IftSubsetSpec::new("scraped-junk", pool.len() / 4)
            .diversity(0.05)
            .junk_rate(0.8),
    ));
    println!(
        "pool (with republished + junk subsets): {} samples\n",
        pool.len()
    );

    // Data-Juicer selection: built-in CFT-EN recipe, tightened after a
    // probe the way Fig. 5 prescribes (junk responses are short).
    let mut recipe = recipes::finetune_en_cft();
    recipe.set_param("text_length_filter", "min_len", Value::Float(90.0))?;
    let ops = recipe.build_ops(&builtin_registry())?;
    let (filtered, report) = Executor::new(ops).run(pool.clone())?;
    let target = filtered.len() * 6 / 10;
    let mut dj_subset = diversity_sample(&filtered, target, 11);
    println!(
        "Data-Juicer selection: {} -> {} (filtered) -> {} (diversity-sampled)",
        report.initial_samples,
        filtered.len(),
        dj_subset.len()
    );

    // Naive competitor: same size, random draw from the raw pool.
    let mut random_subset = random_sample(&pool, dj_subset.len(), 3);

    // Judge the two "fine-tuned models" pairwise (160 prompts).
    let dj_model = TunedModel::new("dj-selection", measure_profile(&mut dj_subset, 1.0));
    let random_model = TunedModel::new("random", measure_profile(&mut random_subset, 1.0));
    // Low-noise judge: subset-selection effects are a few utility points,
    // far below the default response-variance band tuned for Table 3's
    // recipe-level gaps, so judge with a tighter sigma/tie band.
    let judge = Judge {
        sigma: 0.01,
        tie_band: 0.005,
        ..Judge::default()
    };
    let outcome = judge.compare(&random_model, &dj_model);
    println!(
        "\npairwise judge over {} prompts: random {} wins | {} ties | Data-Juicer {} wins",
        outcome.total(),
        outcome.wins_a,
        outcome.ties,
        outcome.wins_b
    );
    assert!(
        outcome.wins_b > outcome.wins_a,
        "refined selection must win"
    );
    println!("Data-Juicer selection wins with the same sample budget — the Table 3 effect.");
    Ok(())
}
