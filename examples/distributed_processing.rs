//! Distributed processing: run the same recipe single-node and on the
//! modeled Ray/Beam clusters, verify identical outputs, and print the
//! Fig. 10 scaling curve.
//!
//! Run with: `cargo run --example distributed_processing`

use data_juicer::dist::{run_distributed, run_single_node, Backend, ClusterSpec};
use data_juicer::prelude::*;
use data_juicer::synth::dialog_corpus;

fn main() -> Result<()> {
    let ops = Recipe::new("dist-example")
        .then(OpSpec::new("whitespace_normalization_mapper"))
        .then(OpSpec::new("clean_links_mapper"))
        .then(
            OpSpec::new("word_num_filter")
                .with("min_num", 5.0)
                .with("max_num", 1e9),
        )
        .then(OpSpec::new("document_deduplicator"))
        .build_ops(&builtin_registry())?;
    let data = dialog_corpus(99, 2000);
    println!(
        "corpus: {} docs, {:.2} MB",
        data.len(),
        data.text_bytes() as f64 / 1e6
    );

    let (single, wall) = run_single_node(&ops, data.clone(), 4)?;
    println!(
        "single node (np=4): {} docs out in {wall:.3}s\n",
        single.len()
    );

    println!(
        "{:>6} {:>14} {:>14}",
        "nodes", "Ray wall (s)", "Beam wall (s)"
    );
    for nodes in [1usize, 2, 4, 8, 16] {
        let spec = ClusterSpec {
            per_node_overhead_s: 0.0,
            single_stream_mbps: 20.0,
            ..ClusterSpec::paper_platform(nodes)
        };
        let (ray_out, ray) = run_distributed(&ops, data.clone(), spec, Backend::Ray)?;
        let (_, beam) = run_distributed(&ops, data.clone(), spec, Backend::Beam)?;
        assert_eq!(
            ray_out.iter().map(|s| s.text()).collect::<Vec<_>>(),
            single.iter().map(|s| s.text()).collect::<Vec<_>>(),
            "distributed output must equal single-node output"
        );
        println!(
            "{nodes:>6} {:>14.4} {:>14.4}",
            ray.modeled_wall_s, beam.modeled_wall_s
        );
    }
    println!("\nRay scales with nodes; Beam is pinned by its serialized loader (Fig. 10).");
    Ok(())
}
