//! OP catalog: enumerate every built-in operator, grouped by Table 1
//! category, and demonstrate the advanced-extension path by registering a
//! custom OP at runtime (the paper's §5.3 "Advanced Extension").
//!
//! Run with: `cargo run --example op_catalog`

use std::sync::Arc;

use data_juicer::core::{OpKind, OpParams};
use data_juicer::ops::{build_formatter, builtin_registry, formatter_names};
use data_juicer::prelude::*;

/// A user-defined mapper, registered the way §5.3 describes: derive from
/// the base trait, implement `process()`, register by name.
struct EmojiStripMapper;

impl data_juicer::core::Mapper for EmojiStripMapper {
    fn name(&self) -> &'static str {
        "emoji_strip_mapper"
    }
    fn process(
        &self,
        sample: &mut Sample,
        _ctx: &mut data_juicer::core::SampleContext,
    ) -> data_juicer::core::Result<bool> {
        let cleaned: String = sample
            .text()
            .chars()
            .filter(|c| {
                !matches!(*c as u32,
                    0x1F300..=0x1FAFF          // emoji blocks
                    | 0x2600..=0x27BF          // misc symbols
                    | 0xFE00..=0xFE0F) // variation selectors
            })
            .collect();
        let changed = cleaned != sample.text();
        sample.set_text(cleaned);
        Ok(changed)
    }
}

fn main() -> data_juicer::core::Result<()> {
    let mut registry = builtin_registry();

    println!("formatters ({}):", formatter_names().len());
    for name in formatter_names() {
        // Each formatter is constructible and handles empty input.
        let f = build_formatter(name)?;
        let _ = f.load_dataset("")?;
        println!("  {name}");
    }

    let mut by_kind: std::collections::BTreeMap<&str, Vec<String>> = Default::default();
    for name in registry.names() {
        let op = registry.build(name, &OpParams::new())?;
        let kind = match op.kind() {
            OpKind::Mapper => "mappers",
            OpKind::Filter => "filters",
            OpKind::Deduplicator => "deduplicators",
            OpKind::Formatter => "formatters",
        };
        by_kind
            .entry(kind)
            .or_default()
            .push(format!("{name} (cost: {:?})", op.cost()));
    }
    let mut total = formatter_names().len();
    for (kind, names) in &by_kind {
        println!("\n{kind} ({}):", names.len());
        for n in names {
            println!("  {n}");
        }
        total += names.len();
    }
    println!("\ntotal built-in OPs: {total} (paper: \"over 50\")");
    assert!(total > 50);

    // Advanced extension: register and immediately use a custom OP.
    registry.register("emoji_strip_mapper", |_params| {
        Ok(data_juicer::core::Op::Mapper(Arc::new(EmojiStripMapper)))
    });
    let recipe = Recipe::new("custom-op-demo")
        .then(OpSpec::new("emoji_strip_mapper"))
        .then(OpSpec::new("whitespace_normalization_mapper"));
    let ops = recipe.build_ops(&registry)?;
    let (out, _) = Executor::new(ops).run(Dataset::from_texts(["clean 🎉 me ☀️ up"]))?;
    println!("\ncustom OP demo: {:?}", out.get(0).unwrap().text());
    assert_eq!(out.get(0).unwrap().text(), "clean me up");
    Ok(())
}
