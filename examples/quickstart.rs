//! Quickstart: load raw JSONL, configure a recipe from YAML, run it, and
//! inspect the report — the zero-to-processed path of the README.
//!
//! Run with: `cargo run --example quickstart`

use data_juicer::ops::{build_formatter, builtin_registry};
use data_juicer::prelude::*;

fn main() -> Result<()> {
    // 1. Raw input: JSON-Lines, one document per line.
    let raw = r#"
{"text": "The committee reviewed the annual report and found the analysis sound.", "source": "news"}
{"text": "The   committee   reviewed the annual report and found the analysis sound.", "source": "mirror"}
{"text": "buy now buy now buy now buy now buy now buy now visit https://spam.example now", "source": "web"}
{"text": "tiny", "source": "web"}
{"text": "Large language models are trained on heterogeneous corpora gathered from the web.", "source": "wiki"}
"#;
    let formatter = build_formatter("jsonl_formatter")?;
    let dataset = formatter.load_dataset(raw.trim())?;
    println!("loaded {} samples", dataset.len());

    // 2. A recipe, written the way the paper's Fig. 5 configs look.
    let recipe = Recipe::from_yaml(
        r#"
project_name: quickstart
np: 2
process:
  - whitespace_normalization_mapper:
  - clean_links_mapper:
  - text_length_filter:
      min_len: 20
      max_len: 100000
  - word_repetition_filter:
      rep_len: 3
      min_ratio: 0.0
      max_ratio: 0.3
  - document_deduplicator:
      lowercase: true
"#,
    )?;

    // 3. Build against the 50+-OP registry and execute with tracing.
    let registry = builtin_registry();
    let ops = recipe.build_ops(&registry)?;
    let exec = Executor::new(ops).with_options(ExecOptions {
        num_workers: recipe.np,
        op_fusion: true,
        trace_examples: 2,
        shard_size: None,
        ..ExecOptions::default()
    });
    let (output, report) = exec.run(dataset)?;

    // 4. Inspect.
    println!("\nper-OP funnel:");
    for (name, remaining) in report.funnel() {
        println!("  {name:<45} -> {remaining} samples");
    }
    println!("\nsurviving documents:");
    for s in output.iter() {
        println!(
            "  [{}] {}",
            s.meta("source").and_then(|v| v.as_str()).unwrap_or("?"),
            s.text()
        );
    }
    assert_eq!(output.len(), 2, "spam, tiny and the duplicate are gone");
    println!(
        "\nquickstart finished: {} -> {} samples",
        report.initial_samples,
        output.len()
    );
    Ok(())
}
