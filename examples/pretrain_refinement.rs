//! Pre-training data refinement: the paper's flagship workload. A noisy
//! CommonCrawl-style corpus goes through the `pretrain-commoncrawl-refine`
//! built-in recipe (19 OPs) with caching enabled, then the analyzer
//! compares before/after probes and the proxy evaluator scores both
//! datasets at an equal token budget.
//!
//! Run with: `cargo run --example pretrain_refinement`

use data_juicer::analyze::visualize;
use data_juicer::config::recipes;
use data_juicer::eval::{measure_profile, ProxyLlm};
use data_juicer::prelude::*;
use data_juicer::store::{CacheManager, CacheMode};
use data_juicer::synth::{web_corpus, WebNoise};

fn main() -> Result<()> {
    let mut raw = web_corpus(2024, 800, WebNoise::default());
    println!(
        "raw corpus: {} docs, {:.2} MB",
        raw.len(),
        raw.text_bytes() as f64 / 1e6
    );

    // Probe the raw data (step 1 of the Fig. 5 loop).
    let probe_before = Analyzer::new().probe(&mut raw);
    println!("\nraw data probe (3 of 13 dimensions):");
    for dim in ["word_count", "flagged_word_ratio", "word_rep_ratio"] {
        if let Some(s) = probe_before.summaries.get(dim) {
            print!("{}", visualize::box_plot(dim, s, 48));
        }
    }

    // Run the built-in refinement recipe with a cache directory: re-running
    // this example resumes instantly from the cached pipeline state.
    let recipe = recipes::commoncrawl_refine();
    let cache_dir = std::env::temp_dir().join("dj-example-pretrain-cache");
    let cache = CacheManager::new(&cache_dir, recipe.fingerprint(), CacheMode::Cache);
    let ops = recipe.build_ops(&builtin_registry())?;
    let exec = Executor::new(ops).with_options(ExecOptions {
        num_workers: 4,
        op_fusion: true,
        trace_examples: 0,
        shard_size: None,
        ..ExecOptions::default()
    });
    let (mut refined, report) = exec.run_with_cache(raw.clone(), &cache)?;
    println!(
        "\nrefinement: {} -> {} docs in {:.2?} ({} steps resumed from cache)",
        report.initial_samples,
        refined.len(),
        report.total_duration,
        report.resumed_steps
    );

    // Compare distributions (step 4).
    let probe_after = Analyzer::new().probe(&mut refined);
    print!(
        "\n{}",
        visualize::diff_histogram(
            "word_rep_ratio before(▒) / after(█)",
            &probe_before.columns["word_rep_ratio"],
            &probe_after.columns["word_rep_ratio"],
            10,
            22,
        )
    );

    // Score both datasets with the proxy evaluator at equal token budget.
    let llm = ProxyLlm::new();
    let p_raw = measure_profile(&mut raw, 2.0e6);
    let p_ref = measure_profile(&mut refined, 2.0e6);
    let s_raw = llm.evaluate("raw", &p_raw, 100.0).average();
    let s_ref = llm.evaluate("refined", &p_ref, 100.0).average();
    println!("proxy avg score @100B tokens: raw {s_raw:.2} vs refined {s_ref:.2}");
    assert!(s_ref > s_raw, "refined data must evaluate better");
    println!("\nrefined data wins at equal budget — the paper's Fig. 7 effect.");
    Ok(())
}
