//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `iter`/`iter_batched`, `Throughput`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — with a
//! plain median-of-samples timing loop and one stdout line per benchmark.
//! No plots, no statistics beyond median/min/max, no HTML reports.

use std::time::{Duration, Instant};

/// Re-exported so `criterion::black_box(x)` works as in the real crate.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are sized (ignored by this shim; one input per iter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation attached to a group (printed with results).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Harness configuration (API subset: `default` + `sample_size`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group("standalone");
        g.bench_function(id, f);
        g.finish();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = *samples.last().expect("non-empty");
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:.2} MiB/s",
                    n as f64 / median.as_secs_f64() / (1 << 20) as f64
                )
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:.0} elem/s", n as f64 / median.as_secs_f64())
            }
            None => String::new(),
        };
        println!(
            "  {}/{id}: median {median:?} (min {min:?}, max {max:?}){rate}",
            self.name
        );
    }

    pub fn finish(self) {}
}

/// Per-sample timing context handed to the benchmark closure.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time one call of `routine` for this sample.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let t0 = Instant::now();
        black_box(routine());
        self.elapsed = t0.elapsed();
    }

    /// Time `routine` on a freshly set-up input (setup excluded).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        self.elapsed = t0.elapsed();
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_smoke");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("iter", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("iter_batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    criterion_group!(plain, sample_bench);

    #[test]
    fn groups_run() {
        benches();
        plain();
    }
}
