//! Offline stand-in for the `bytes` crate: just enough of `Bytes`/`BytesMut`
//! and the `Buf`/`BufMut` traits for dj-store's binary dataset codec.
//! Backed by a plain `Vec<u8>` plus a read cursor — no refcounted slices.

/// Read-side buffer operations (API subset).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    fn get_u8(&mut self) -> u8;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
    fn get_i64_le(&mut self) -> i64;
    fn get_f64_le(&mut self) -> f64;
}

/// Write-side buffer operations (API subset).
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_i64_le(&mut self, v: i64);
    fn put_f64_le(&mut self, v: f64);
    fn put_slice(&mut self, src: &[u8]);
}

/// Growable byte buffer (stand-in for `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.inner,
            pos: 0,
        }
    }
}

// The real `bytes::BytesMut` derefs to `[u8]`; mirror that so callers can
// pass `&buf` anywhere a byte slice is expected.
impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

/// Immutable byte view with a consuming cursor (stand-in for `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Split off the next `n` bytes as an owned buffer, advancing the cursor.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.remaining(), "split_to out of bounds");
        let out = Bytes {
            data: self.data[self.pos..self.pos + n].to_vec(),
            pos: 0,
        };
        self.pos += n;
        out
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.remaining() >= n, "buffer underrun");
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 1);
        b.put_i64_le(-42);
        b.put_f64_le(3.5);
        b.put_slice(b"tail");
        let mut r = Bytes::copy_from_slice(&b.to_vec());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 3.5);
        assert_eq!(r.split_to(4).to_vec(), b"tail");
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_end_panics() {
        Bytes::copy_from_slice(b"ab").split_to(3);
    }
}
