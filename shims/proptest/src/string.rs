//! Tiny regex-subset string generator backing `&str` strategies.
//!
//! Supports exactly the pattern features the workspace's tests use:
//! literal characters, `.` (printable char), character classes `[...]` with
//! ranges and `\n`/`\t`/`\"`/`\\` escapes, and the quantifiers `*`, `+`,
//! `?`, `{m}`, `{m,n}` — applied to the immediately preceding atom.
//! Unsupported syntax falls back to emitting the characters literally.

use crate::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// A fixed character.
    Literal(char),
    /// `.` — any printable character from a representative pool.
    AnyChar,
    /// `[...]` — one of an explicit character pool.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generate one string matching `pattern`.
pub fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for p in &pieces {
        let n = p.min + rng.below((p.max - p.min + 1) as u64) as usize;
        for _ in 0..n {
            out.push(gen_atom(&p.atom, rng));
        }
    }
    out
}

/// Pool for `.`: printable ASCII plus a few multi-byte characters so UTF-8
/// handling is exercised.
const ANY_EXTRA: &[char] = &['é', '中', 'λ', '—', '“'];

fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::AnyChar => {
            let roll = rng.below(100);
            if roll < 92 {
                char::from_u32(0x20 + rng.below(0x5F) as u32).expect("printable ascii")
            } else {
                ANY_EXTRA[rng.below(ANY_EXTRA.len() as u64) as usize]
            }
        }
        Atom::Class(pool) => pool[rng.below(pool.len() as u64) as usize],
    }
}

/// Default repetition cap for unbounded quantifiers (`*`, `+`).
const UNBOUNDED_MAX: usize = 8;

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces: Vec<Piece> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '[' => {
                let (pool, next) = parse_class(&chars, i + 1);
                i = next;
                Atom::Class(pool)
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Literal(unescape(chars[i - 1]))
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Quantifier attached to this atom?
        let (min, max, next) = parse_quantifier(&chars, i);
        i = next;
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_quantifier(chars: &[char], i: usize) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('*') => (0, UNBOUNDED_MAX, i + 1),
        Some('+') => (1, UNBOUNDED_MAX, i + 1),
        Some('?') => (0, 1, i + 1),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or(i);
            if close == i {
                return (1, 1, i); // malformed; treat `{` as consumed elsewhere
            }
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                None => {
                    let n = body.trim().parse().unwrap_or(1);
                    (n, n)
                }
                Some((lo, hi)) => {
                    let lo = lo.trim().parse().unwrap_or(0);
                    let hi = hi.trim().parse().unwrap_or(lo + UNBOUNDED_MAX);
                    (lo, hi.max(lo))
                }
            };
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

/// Parse a `[...]` class starting just after `[`; returns (pool, index past `]`).
fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut pool = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' && i + 1 < chars.len() {
            i += 2;
            unescape(chars[i - 1])
        } else {
            i += 1;
            chars[i - 1]
        };
        // Range `a-z` (a `-` immediately before `]` is a literal).
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&n| n != ']') {
            let hi = if chars[i + 1] == '\\' && i + 2 < chars.len() {
                i += 3;
                unescape(chars[i - 1])
            } else {
                i += 2;
                chars[i - 1]
            };
            for u in (c as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(u) {
                    pool.push(ch);
                }
            }
        } else {
            pool.push(c);
        }
    }
    if pool.is_empty() {
        pool.push('x'); // degenerate class; keep the generator total
    }
    (pool, (i + 1).min(chars.len()))
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: &str) -> String {
        let mut rng = TestRng::from_name(seed);
        gen_from_pattern(pattern, &mut rng)
    }

    #[test]
    fn fixed_counts_and_classes() {
        for seed in ["a", "b", "c", "d"] {
            let s = gen("[a-z]{3}", seed);
            assert_eq!(s.chars().count(), 3);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn bounded_ranges_respected() {
        for seed in 0..20 {
            let s = gen("[a-z][a-z0-9_]{0,10}", &seed.to_string());
            let n = s.chars().count();
            assert!((1..=11).contains(&n), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn dot_star_generates_varied_lengths() {
        let lens: std::collections::HashSet<usize> = (0..40)
            .map(|i| gen(".*", &format!("s{i}")).chars().count())
            .collect();
        assert!(lens.len() > 3, "expected varied lengths, got {lens:?}");
    }

    #[test]
    fn class_escapes_and_trailing_dash() {
        for seed in 0..30 {
            let s = gen("[a\\n\\t\"\\\\-]{5}", &seed.to_string());
            assert!(
                s.chars()
                    .all(|c| matches!(c, 'a' | '\n' | '\t' | '"' | '\\' | '-')),
                "{s:?}"
            );
        }
    }

    #[test]
    fn space_to_tilde_range() {
        for seed in 0..20 {
            let s = gen("[ -~]{8}", &seed.to_string());
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literals_pass_through() {
        assert_eq!(gen("abc", "x"), "abc");
    }
}
