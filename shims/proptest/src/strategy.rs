//! The [`Strategy`] trait and the combinators/primitive strategies the
//! workspace's tests consume.

use std::rc::Rc;

use crate::string::gen_from_pattern;
use crate::TestRng;

/// A generator of values of one type (no shrinking in this shim).
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a clonable, reference-counted strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.gen_value(rng)))
    }

    /// Recursive strategies: `f` receives the strategy for one level down.
    /// Levels are built eagerly up to `depth`; `_size`/`_items` (total node
    /// budget knobs in real proptest) are accepted for signature parity.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _size: u32,
        _items: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Bias toward leaves so trees stay small: 2 leaf arms : 1 branch.
            let branch = f(level).boxed();
            level = Union::new(vec![leaf.clone(), leaf.clone(), branch]).boxed();
        }
        level
    }
}

/// Clonable type-erased strategy (stand-in for proptest's `BoxedStrategy`).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Uniform choice among strategies (what `prop_oneof!` builds).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].gen_value(rng)
    }
}

// ---- primitive strategies ----------------------------------------------

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

#[derive(Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// Integer / float range strategies.
macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(hi > lo, "empty range strategy");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(hi >= lo, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty float range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

// String strategies from regex-ish patterns.
impl Strategy for &str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

// Tuple strategies (2- and 3-tuples cover current usage).
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.gen_value(rng), self.1.gen_value(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.gen_value(rng),
            self.1.gen_value(rng),
            self.2.gen_value(rng),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::from_name("compose");
        let s = (0usize..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::from_name("union");
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(u.gen_value(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Clone, Debug)]
        #[allow(dead_code)] // payloads only exist to give the tree shape
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let s = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::from_name("rec");
        for _ in 0..50 {
            let _ = s.gen_value(&mut rng); // must not hang or overflow
        }
    }
}
