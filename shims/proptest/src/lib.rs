//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the API subset its property tests use: the [`Strategy`] trait with
//! `prop_map`/`prop_recursive`, regex-ish string strategies, numeric range
//! strategies, `Just`, `any`, tuple strategies, `collection::{vec,
//! btree_map, hash_set}`, the `proptest!`/`prop_oneof!`/`prop_assert!*`
//! macros and [`ProptestConfig`]. Inputs are generated from a deterministic
//! per-test PRNG; there is **no shrinking** — a failing case panics with the
//! generated inputs visible in the assertion message.

pub mod strategy;
pub mod string;

pub mod test_runner {
    /// Runner configuration (API subset: case count).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 48 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }
}

/// Deterministic generator driving all strategies (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name so every test gets a distinct, stable stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::collections::{BTreeMap, HashSet};
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_size(rng, &self.size);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>` with at most `size.end - 1` entries
    /// (duplicate keys collapse, as in real proptest).
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_size(rng, &self.size);
            (0..n)
                .map(|_| (self.key.gen_value(rng), self.value.gen_value(rng)))
                .collect()
        }
    }

    /// Strategy for `HashSet<T>` (duplicates collapse).
    #[derive(Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S> {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_size(rng, &self.size);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    fn sample_size(rng: &mut TestRng, size: &Range<usize>) -> usize {
        assert!(size.end > size.start, "collection size range is empty");
        size.start + rng.below((size.end - size.start) as u64) as usize
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assertion macros: identical to `assert!*` (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// The property-test block macro: declares one zero-argument `#[test]` per
/// inner function, generating its inputs from the listed strategies for
/// `cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}
