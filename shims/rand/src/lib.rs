//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the *exact* API subset it consumes: [`Rng::gen_range`]/[`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256**, seeded via
//! SplitMix64 — high-quality, deterministic across platforms, and fast.
//! It is NOT the upstream `StdRng` stream; nothing in this workspace relies
//! on specific draw values, only on determinism per seed.

pub mod rngs {
    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

impl StdRng {
    #[inline]
    pub(crate) fn next_u64_impl(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Seedable generators (API subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion of the 64-bit seed into the full state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Types `gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range(rng: &mut StdRng, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut StdRng, low: Self, high: Self, inclusive: bool) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = if inclusive { hi - lo + 1 } else { hi - lo };
                assert!(span > 0, "gen_range: empty range");
                // Multiply-shift rejection-free mapping is fine here: spans
                // are tiny relative to 2^64, bias is negligible for tests.
                let r = rng.next_u64_impl() as u128;
                let v = lo + ((r % span as u128) as i128);
                v as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut StdRng, low: Self, high: Self, _inclusive: bool) -> Self {
                assert!(high > low, "gen_range: empty float range");
                let unit = (rng.next_u64_impl() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}
impl_sample_float!(f32, f64);

/// Range argument for [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi, true)
    }
}

/// The subset of rand's `Rng` this workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>;

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit = (self.next_u64_impl() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

pub mod seq {
    use super::rngs::StdRng;
    use super::{Rng, SampleUniform};

    /// Slice shuffling (API subset of rand's `SliceRandom`).
    pub trait SliceRandom {
        fn shuffle(&mut self, rng: &mut StdRng);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut StdRng) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i, true);
                self.swap(i, j);
            }
            let _ = rng.next_u64(); // keep streams distinct across callers
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
