//! `dj` — the Data-Juicer command-line front-end.
//!
//! `dj serve` runs the persistent service runtime: a long-lived process
//! that accepts concurrent job submissions as line-delimited JSON over
//! stdin (or a unix domain socket with `--socket PATH`), schedules them
//! over the shared worker pool with admission control, and emits
//! line-delimited JSON events on the same channel. See `docs/service.md`
//! for the protocol.
//!
//! With `--journal PATH` the service appends every submit and every
//! terminal outcome to an fsynced line-JSON journal. On restart the
//! journal is replayed: jobs without a terminal event are re-admitted
//! (recorded as `readmitted` so a second crash replays correctly) and
//! re-execute deterministically — the committed output is byte-identical
//! to what an uninterrupted run would have produced. See
//! `docs/robustness.md`.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use data_juicer::config::Recipe;
use data_juicer::core::{parse_json, Dataset, Value};
use data_juicer::exec::{executor_from_recipe, JobControl, Runtime, RuntimeConfig};
use data_juicer::ops::builtin_registry;

const USAGE: &str = "usage: dj serve [--socket PATH] [--max-jobs N] [--memory-budget BYTES] [--retries N] [--journal PATH]

Commands are line-delimited JSON on stdin (or the socket); events are
line-delimited JSON on stdout (or the socket). See docs/service.md.
--retries N retries transiently-failed jobs up to N attempts total;
--journal PATH makes submissions crash-recoverable (docs/robustness.md).";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => match serve_config(&args[1..]) {
            Ok(opts) => serve(opts),
            Err(e) => {
                eprintln!("dj serve: {e}");
                std::process::exit(2);
            }
        },
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

struct ServeOpts {
    cfg: RuntimeConfig,
    socket: Option<String>,
    journal: Option<String>,
}

fn serve_config(args: &[String]) -> Result<ServeOpts, String> {
    let mut cfg = RuntimeConfig::default();
    let mut socket = None;
    let mut journal = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--socket" => socket = Some(value("--socket")?),
            "--journal" => journal = Some(value("--journal")?),
            "--max-jobs" => {
                cfg.max_jobs = value("--max-jobs")?
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or("--max-jobs must be a positive integer")?;
            }
            "--retries" => {
                cfg.retry.max_attempts = value("--retries")?
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or("--retries must be a positive attempt count")?;
            }
            "--memory-budget" => {
                cfg.memory_budget = Some(
                    value("--memory-budget")?
                        .parse::<u64>()
                        .ok()
                        .filter(|n| *n >= 1)
                        .ok_or("--memory-budget must be a positive byte count")?,
                );
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(ServeOpts {
        cfg,
        socket,
        journal,
    })
}

/// One tracked job: the control block for cancel/progress plus a flag the
/// waiter thread sets when the result resolves.
struct ServeJob {
    ctl: Arc<JobControl>,
    finished: Arc<AtomicBool>,
}

/// Crash-recovery journal: one JSON object per line, fsynced after every
/// append, so a SIGKILL can lose at most the line being written — never
/// a line that was already acknowledged.
///
/// Journaled events: `submit` (with the full original submit command),
/// the terminal outcomes `done` / `failed` / `cancelled`, and
/// `readmitted` (a replayed job got a new id — terminal for the *old*
/// id, so a second crash replays only the new one).
struct Journal {
    file: Mutex<File>,
}

impl Journal {
    fn open(path: &str) -> Result<Journal, String> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("open journal {path}: {e}"))?;
        Ok(Journal {
            file: Mutex::new(file),
        })
    }

    fn append(&self, fields: &[(&str, Value)]) {
        let line = json_line(fields);
        let mut f = self.file.lock().expect("journal mutex");
        let _ = writeln!(f, "{line}");
        let _ = f.flush();
        let _ = f.sync_data();
    }
}

struct Service {
    runtime: Runtime,
    jobs: Mutex<HashMap<u64, ServeJob>>,
    journal: Option<Arc<Journal>>,
}

type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

fn serve(opts: ServeOpts) {
    // Read any prior journal *before* opening the append handle, so
    // replay sees exactly the pre-crash history.
    let history = match &opts.journal {
        Some(path) => std::fs::read_to_string(path).unwrap_or_default(),
        None => String::new(),
    };
    let journal = match &opts.journal {
        Some(path) => match Journal::open(path) {
            Ok(j) => Some(Arc::new(j)),
            Err(e) => {
                eprintln!("dj serve: {e}");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let service = Arc::new(Service {
        runtime: Runtime::new(opts.cfg),
        jobs: Mutex::new(HashMap::new()),
        journal,
    });
    replay_journal(&service, &history);
    match opts.socket {
        None => {
            let out: SharedWriter = Arc::new(Mutex::new(Box::new(std::io::stdout())));
            serve_channel(&service, BufReader::new(std::io::stdin()), Arc::clone(&out));
            drain_and_exit(&service);
        }
        Some(path) => {
            let _ = std::fs::remove_file(&path);
            let listener = match std::os::unix::net::UnixListener::bind(&path) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("dj serve: bind {path}: {e}");
                    std::process::exit(2);
                }
            };
            eprintln!("dj serve: listening on {path}");
            for conn in listener.incoming() {
                let Ok(conn) = conn else { continue };
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    let reader = BufReader::new(conn.try_clone().expect("clone unix stream"));
                    let out: SharedWriter = Arc::new(Mutex::new(Box::new(conn)));
                    if serve_channel(&service, reader, out) == Verdict::Shutdown {
                        drain_and_exit(&service);
                    }
                });
            }
        }
    }
}

/// Re-admit every journaled job without a terminal outcome. Replayed
/// jobs re-execute deterministically from their original submit command;
/// their events go to the journal only (there is no client channel at
/// startup) and their status is visible to any later `status` command.
fn replay_journal(service: &Arc<Service>, history: &str) {
    let Some(journal) = service.journal.clone() else {
        return;
    };
    let mut submits: Vec<(u64, Value)> = Vec::new();
    let mut terminal: Vec<u64> = Vec::new();
    for line in history.lines() {
        // A crash can truncate the final line; skip anything unparseable.
        let Ok(entry) = parse_json(line) else {
            continue;
        };
        let Some(event) = entry.get_path("event").and_then(Value::as_str) else {
            continue;
        };
        let Some(id) = entry.get_path("job").and_then(Value::as_int) else {
            continue;
        };
        let id = id as u64;
        match event {
            "submit" => {
                if let Some(cmd) = entry.get_path("cmd") {
                    submits.push((id, cmd.clone()));
                }
            }
            "done" | "failed" | "cancelled" | "readmitted" => terminal.push(id),
            _ => {}
        }
    }
    let sink: SharedWriter = Arc::new(Mutex::new(Box::new(std::io::sink())));
    for (old_id, cmd) in submits {
        if terminal.contains(&old_id) {
            continue;
        }
        match submit(service, &cmd, &sink) {
            Ok(new_id) => {
                journal.append(&[
                    ("event", Value::from("readmitted")),
                    ("job", Value::from(old_id as i64)),
                    ("as", Value::from(new_id as i64)),
                ]);
                eprintln!("dj serve: journal: readmitted job {old_id} as {new_id}");
            }
            Err(msg) => {
                // Mark terminal so the next restart does not retry a
                // submission that can no longer be honoured.
                journal.append(&[
                    ("event", Value::from("failed")),
                    ("job", Value::from(old_id as i64)),
                    ("error", Value::from(msg.clone())),
                ]);
                eprintln!("dj serve: journal: job {old_id} not readmitted: {msg}");
            }
        }
    }
}

/// Wait for every submitted job's terminal event to hit the wire, then
/// exit the process.
fn drain_and_exit(service: &Service) -> ! {
    loop {
        let all_done = {
            let jobs = service.jobs.lock().expect("jobs mutex");
            jobs.values().all(|j| j.finished.load(Ordering::Acquire))
        };
        if all_done && service.runtime.jobs_in_flight() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    std::process::exit(0);
}

#[derive(PartialEq)]
enum Verdict {
    Eof,
    Shutdown,
}

/// Drive one command channel until EOF or a `shutdown` command.
fn serve_channel(service: &Arc<Service>, reader: impl BufRead, out: SharedWriter) -> Verdict {
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match handle_command(service, &line, &out) {
            Ok(true) => {
                emit(&out, &[("event", Value::from("shutdown"))]);
                return Verdict::Shutdown;
            }
            Ok(false) => {}
            Err(msg) => emit(
                &out,
                &[("event", Value::from("error")), ("error", Value::from(msg))],
            ),
        }
    }
    Verdict::Eof
}

/// Handle one command line. `Ok(true)` means shutdown was requested.
fn handle_command(service: &Arc<Service>, line: &str, out: &SharedWriter) -> Result<bool, String> {
    let cmd = parse_json(line).map_err(|e| format!("malformed command: {e}"))?;
    let name = cmd
        .get_path("cmd")
        .and_then(Value::as_str)
        .ok_or("missing `cmd` field")?;
    match name {
        "submit" => {
            submit(service, &cmd, out)?;
            Ok(false)
        }
        "cancel" => {
            let id = job_id(&cmd)?;
            let jobs = service.jobs.lock().expect("jobs mutex");
            let job = jobs.get(&id).ok_or(format!("unknown job {id}"))?;
            job.ctl.cancel();
            emit(
                out,
                &[
                    ("event", Value::from("cancelling")),
                    ("job", Value::from(id as i64)),
                ],
            );
            Ok(false)
        }
        "status" => {
            let jobs = service.jobs.lock().expect("jobs mutex");
            match cmd.get_path("job") {
                Some(_) => {
                    let id = job_id(&cmd)?;
                    let job = jobs.get(&id).ok_or(format!("unknown job {id}"))?;
                    emit_status(out, id, job);
                }
                None => {
                    let mut ids: Vec<u64> = jobs.keys().copied().collect();
                    ids.sort_unstable();
                    for id in ids {
                        emit_status(out, id, &jobs[&id]);
                    }
                }
            }
            Ok(false)
        }
        "shutdown" => Ok(true),
        other => Err(format!("unknown cmd `{other}`")),
    }
}

fn job_id(cmd: &Value) -> Result<u64, String> {
    cmd.get_path("job")
        .and_then(Value::as_int)
        .filter(|i| *i >= 0)
        .map(|i| i as u64)
        .ok_or_else(|| "missing or invalid `job` field".into())
}

fn submit(service: &Arc<Service>, cmd: &Value, out: &SharedWriter) -> Result<u64, String> {
    let recipe_value = cmd.get_path("recipe").ok_or("submit requires `recipe`")?;
    let recipe = Recipe::from_value(recipe_value).map_err(|e| format!("bad recipe: {e}"))?;
    let registry = builtin_registry();
    let exec =
        executor_from_recipe(&recipe, &registry, true).map_err(|e| format!("bad recipe: {e}"))?;

    // File-to-file when the recipe names an input; otherwise the command
    // must carry the samples inline as `texts`.
    let handle = if recipe.input_path.is_some() {
        service.runtime.submit_io(exec)
    } else {
        let texts = cmd
            .get_path("texts")
            .and_then(Value::as_list)
            .ok_or("submit requires recipe `input_path` or inline `texts`")?;
        let texts: Vec<String> = texts
            .iter()
            .map(|t| {
                t.as_str()
                    .map(str::to_string)
                    .ok_or("`texts` must be strings")
            })
            .collect::<Result<_, _>>()?;
        service.runtime.submit(exec, Dataset::from_texts(texts))
    };

    let id = handle.id();
    let finished = Arc::new(AtomicBool::new(false));
    service.jobs.lock().expect("jobs mutex").insert(
        id,
        ServeJob {
            ctl: handle.control(),
            finished: Arc::clone(&finished),
        },
    );
    // Journal the acceptance with the full original command *before*
    // acknowledging it, so an acknowledged submission is always
    // recoverable.
    if let Some(journal) = &service.journal {
        journal.append(&[
            ("event", Value::from("submit")),
            ("job", Value::from(id as i64)),
            ("cmd", cmd.clone()),
        ]);
    }
    emit(
        out,
        &[
            ("event", Value::from("accepted")),
            ("job", Value::from(id as i64)),
        ],
    );

    // The waiter thread owns the handle; it emits (and journals) the
    // terminal event.
    let out = Arc::clone(out);
    let journal = service.journal.clone();
    std::thread::spawn(move || {
        let result = handle.wait();
        let terminal: Vec<(&str, Value)> = match &result {
            Ok(output) => vec![
                ("event", Value::from("done")),
                ("job", Value::from(id as i64)),
                (
                    "samples_in",
                    Value::from(output.report.initial_samples as i64),
                ),
                (
                    "samples_out",
                    Value::from(output.report.final_samples as i64),
                ),
                (
                    "seconds",
                    Value::from(output.report.total_duration.as_secs_f64()),
                ),
                ("spilled", Value::from(output.report.spilled)),
                (
                    "records_skipped",
                    Value::from(output.report.records_skipped as i64),
                ),
                (
                    "records_quarantined",
                    Value::from(output.report.records_quarantined as i64),
                ),
            ],
            Err(data_juicer::core::DjError::Cancelled) => vec![
                ("event", Value::from("cancelled")),
                ("job", Value::from(id as i64)),
            ],
            Err(e) => vec![
                ("event", Value::from("failed")),
                ("job", Value::from(id as i64)),
                ("error", Value::from(e.to_string())),
            ],
        };
        // Journal first: once the outcome is durable, tell the client.
        if let Some(journal) = &journal {
            journal.append(&terminal);
        }
        emit(&out, &terminal);
        // Set only after the terminal event is written, so a shutdown
        // drain that waits on this flag never truncates the event stream.
        finished.store(true, Ordering::Release);
    });
    Ok(id)
}

fn emit_status(out: &SharedWriter, id: u64, job: &ServeJob) {
    emit(
        out,
        &[
            ("event", Value::from("status")),
            ("job", Value::from(id as i64)),
            ("shards_done", Value::from(job.ctl.shards_done() as i64)),
            ("live_samples", Value::from(job.ctl.live_samples() as i64)),
            ("live_bytes", Value::from(job.ctl.live_bytes() as i64)),
            (
                "finished",
                Value::from(job.finished.load(Ordering::Acquire)),
            ),
            ("cancelled", Value::from(job.ctl.is_cancelled())),
            ("attempts", Value::from(job.ctl.attempts() as i64)),
        ],
    );
}

/// Assemble one JSON object line (field order as given — `Value::Map`
/// would sort keys, so the line is built directly).
fn json_line(fields: &[(&str, Value)]) -> String {
    let mut line = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&Value::from(*k).to_string());
        line.push(':');
        line.push_str(&v.to_string());
    }
    line.push('}');
    line
}

/// Write one JSON event line to the client channel.
fn emit(out: &SharedWriter, fields: &[(&str, Value)]) {
    let line = json_line(fields);
    let mut w = out.lock().expect("writer mutex");
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
}
