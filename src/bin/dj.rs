//! `dj` — the Data-Juicer command-line front-end.
//!
//! `dj serve` runs the persistent service runtime: a long-lived process
//! that accepts concurrent job submissions as line-delimited JSON over
//! stdin (or a unix domain socket with `--socket PATH`), schedules them
//! over the shared worker pool with admission control, and emits
//! line-delimited JSON events on the same channel. See `docs/service.md`
//! for the protocol.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use data_juicer::config::Recipe;
use data_juicer::core::{parse_json, Dataset, Value};
use data_juicer::exec::{executor_from_recipe, JobControl, Runtime, RuntimeConfig};
use data_juicer::ops::builtin_registry;

const USAGE: &str = "usage: dj serve [--socket PATH] [--max-jobs N] [--memory-budget BYTES]

Commands are line-delimited JSON on stdin (or the socket); events are
line-delimited JSON on stdout (or the socket). See docs/service.md.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => match serve_config(&args[1..]) {
            Ok((cfg, socket)) => serve(cfg, socket),
            Err(e) => {
                eprintln!("dj serve: {e}");
                std::process::exit(2);
            }
        },
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

fn serve_config(args: &[String]) -> Result<(RuntimeConfig, Option<String>), String> {
    let mut cfg = RuntimeConfig::default();
    let mut socket = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--socket" => socket = Some(value("--socket")?),
            "--max-jobs" => {
                cfg.max_jobs = value("--max-jobs")?
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or("--max-jobs must be a positive integer")?;
            }
            "--memory-budget" => {
                cfg.memory_budget = Some(
                    value("--memory-budget")?
                        .parse::<u64>()
                        .ok()
                        .filter(|n| *n >= 1)
                        .ok_or("--memory-budget must be a positive byte count")?,
                );
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok((cfg, socket))
}

/// One tracked job: the control block for cancel/progress plus a flag the
/// waiter thread sets when the result resolves.
struct ServeJob {
    ctl: Arc<JobControl>,
    finished: Arc<AtomicBool>,
}

struct Service {
    runtime: Runtime,
    jobs: Mutex<HashMap<u64, ServeJob>>,
}

type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

fn serve(cfg: RuntimeConfig, socket: Option<String>) {
    let service = Arc::new(Service {
        runtime: Runtime::new(cfg),
        jobs: Mutex::new(HashMap::new()),
    });
    match socket {
        None => {
            let out: SharedWriter = Arc::new(Mutex::new(Box::new(std::io::stdout())));
            serve_channel(&service, BufReader::new(std::io::stdin()), Arc::clone(&out));
            drain_and_exit(&service);
        }
        Some(path) => {
            let _ = std::fs::remove_file(&path);
            let listener = match std::os::unix::net::UnixListener::bind(&path) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("dj serve: bind {path}: {e}");
                    std::process::exit(2);
                }
            };
            eprintln!("dj serve: listening on {path}");
            for conn in listener.incoming() {
                let Ok(conn) = conn else { continue };
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    let reader = BufReader::new(conn.try_clone().expect("clone unix stream"));
                    let out: SharedWriter = Arc::new(Mutex::new(Box::new(conn)));
                    if serve_channel(&service, reader, out) == Verdict::Shutdown {
                        drain_and_exit(&service);
                    }
                });
            }
        }
    }
}

/// Wait for every submitted job's terminal event to hit the wire, then
/// exit the process.
fn drain_and_exit(service: &Service) -> ! {
    loop {
        let all_done = {
            let jobs = service.jobs.lock().expect("jobs mutex");
            jobs.values().all(|j| j.finished.load(Ordering::Acquire))
        };
        if all_done && service.runtime.jobs_in_flight() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    std::process::exit(0);
}

#[derive(PartialEq)]
enum Verdict {
    Eof,
    Shutdown,
}

/// Drive one command channel until EOF or a `shutdown` command.
fn serve_channel(service: &Arc<Service>, reader: impl BufRead, out: SharedWriter) -> Verdict {
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match handle_command(service, &line, &out) {
            Ok(true) => {
                emit(&out, &[("event", Value::from("shutdown"))]);
                return Verdict::Shutdown;
            }
            Ok(false) => {}
            Err(msg) => emit(
                &out,
                &[("event", Value::from("error")), ("error", Value::from(msg))],
            ),
        }
    }
    Verdict::Eof
}

/// Handle one command line. `Ok(true)` means shutdown was requested.
fn handle_command(service: &Arc<Service>, line: &str, out: &SharedWriter) -> Result<bool, String> {
    let cmd = parse_json(line).map_err(|e| format!("malformed command: {e}"))?;
    let name = cmd
        .get_path("cmd")
        .and_then(Value::as_str)
        .ok_or("missing `cmd` field")?;
    match name {
        "submit" => {
            submit(service, &cmd, out)?;
            Ok(false)
        }
        "cancel" => {
            let id = job_id(&cmd)?;
            let jobs = service.jobs.lock().expect("jobs mutex");
            let job = jobs.get(&id).ok_or(format!("unknown job {id}"))?;
            job.ctl.cancel();
            emit(
                out,
                &[
                    ("event", Value::from("cancelling")),
                    ("job", Value::from(id as i64)),
                ],
            );
            Ok(false)
        }
        "status" => {
            let jobs = service.jobs.lock().expect("jobs mutex");
            match cmd.get_path("job") {
                Some(_) => {
                    let id = job_id(&cmd)?;
                    let job = jobs.get(&id).ok_or(format!("unknown job {id}"))?;
                    emit_status(out, id, job);
                }
                None => {
                    let mut ids: Vec<u64> = jobs.keys().copied().collect();
                    ids.sort_unstable();
                    for id in ids {
                        emit_status(out, id, &jobs[&id]);
                    }
                }
            }
            Ok(false)
        }
        "shutdown" => Ok(true),
        other => Err(format!("unknown cmd `{other}`")),
    }
}

fn job_id(cmd: &Value) -> Result<u64, String> {
    cmd.get_path("job")
        .and_then(Value::as_int)
        .filter(|i| *i >= 0)
        .map(|i| i as u64)
        .ok_or_else(|| "missing or invalid `job` field".into())
}

fn submit(service: &Arc<Service>, cmd: &Value, out: &SharedWriter) -> Result<(), String> {
    let recipe_value = cmd.get_path("recipe").ok_or("submit requires `recipe`")?;
    let recipe = Recipe::from_value(recipe_value).map_err(|e| format!("bad recipe: {e}"))?;
    let registry = builtin_registry();
    let exec =
        executor_from_recipe(&recipe, &registry, true).map_err(|e| format!("bad recipe: {e}"))?;

    // File-to-file when the recipe names an input; otherwise the command
    // must carry the samples inline as `texts`.
    let handle = if recipe.input_path.is_some() {
        service.runtime.submit_io(exec)
    } else {
        let texts = cmd
            .get_path("texts")
            .and_then(Value::as_list)
            .ok_or("submit requires recipe `input_path` or inline `texts`")?;
        let texts: Vec<String> = texts
            .iter()
            .map(|t| {
                t.as_str()
                    .map(str::to_string)
                    .ok_or("`texts` must be strings")
            })
            .collect::<Result<_, _>>()?;
        service.runtime.submit(exec, Dataset::from_texts(texts))
    };

    let id = handle.id();
    let finished = Arc::new(AtomicBool::new(false));
    service.jobs.lock().expect("jobs mutex").insert(
        id,
        ServeJob {
            ctl: handle.control(),
            finished: Arc::clone(&finished),
        },
    );
    emit(
        out,
        &[
            ("event", Value::from("accepted")),
            ("job", Value::from(id as i64)),
        ],
    );

    // The waiter thread owns the handle; it emits the terminal event.
    let out = Arc::clone(out);
    std::thread::spawn(move || {
        let result = handle.wait();
        match result {
            Ok(output) => emit(
                &out,
                &[
                    ("event", Value::from("done")),
                    ("job", Value::from(id as i64)),
                    (
                        "samples_in",
                        Value::from(output.report.initial_samples as i64),
                    ),
                    (
                        "samples_out",
                        Value::from(output.report.final_samples as i64),
                    ),
                    (
                        "seconds",
                        Value::from(output.report.total_duration.as_secs_f64()),
                    ),
                    ("spilled", Value::from(output.report.spilled)),
                ],
            ),
            Err(data_juicer::core::DjError::Cancelled) => emit(
                &out,
                &[
                    ("event", Value::from("cancelled")),
                    ("job", Value::from(id as i64)),
                ],
            ),
            Err(e) => emit(
                &out,
                &[
                    ("event", Value::from("failed")),
                    ("job", Value::from(id as i64)),
                    ("error", Value::from(e.to_string())),
                ],
            ),
        }
        // Set only after the terminal event is written, so a shutdown
        // drain that waits on this flag never truncates the event stream.
        finished.store(true, Ordering::Release);
    });
    Ok(())
}

fn emit_status(out: &SharedWriter, id: u64, job: &ServeJob) {
    emit(
        out,
        &[
            ("event", Value::from("status")),
            ("job", Value::from(id as i64)),
            ("shards_done", Value::from(job.ctl.shards_done() as i64)),
            ("live_samples", Value::from(job.ctl.live_samples() as i64)),
            ("live_bytes", Value::from(job.ctl.live_bytes() as i64)),
            (
                "finished",
                Value::from(job.finished.load(Ordering::Acquire)),
            ),
            ("cancelled", Value::from(job.ctl.is_cancelled())),
        ],
    );
}

/// Write one JSON event line (field order as given — `Value::Map` would
/// sort keys, so the line is assembled directly).
fn emit(out: &SharedWriter, fields: &[(&str, Value)]) {
    let mut line = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&Value::from(*k).to_string());
        line.push(':');
        line.push_str(&v.to_string());
    }
    line.push('}');
    let mut w = out.lock().expect("writer mutex");
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
}
