//! # data-juicer — a one-stop data processing system for LLM training data
//!
//! A from-scratch Rust reproduction of **Data-Juicer** (SIGMOD 2024): a
//! composable operator pool for cleaning, filtering and deduplicating LLM
//! training corpora, with a feedback loop of analyzers, visualizers,
//! tracers, samplers, HPO and (simulated) auto-evaluation, plus the system
//! optimizations the paper describes — context management, OP fusion &
//! reordering, caching/checkpointing with compression, and distributed
//! execution.
//!
//! ## Quickstart
//!
//! ```
//! use data_juicer::prelude::*;
//!
//! // 1. A recipe: ordered OPs with hyper-parameters (or parse YAML).
//! let recipe = Recipe::new("quickstart")
//!     .then(OpSpec::new("whitespace_normalization_mapper"))
//!     .then(OpSpec::new("text_length_filter").with("min_len", 15.0).with("max_len", 1e6))
//!     .then(OpSpec::new("document_deduplicator"));
//!
//! // 2. Build the pipeline against the built-in 50+-OP registry.
//! let registry = builtin_registry();
//! let ops = recipe.build_ops(&registry).unwrap();
//!
//! // 3. Run it.
//! let data = Dataset::from_texts([
//!     "a   short doc that   needs whitespace cleanup, long enough to keep",
//!     "tiny",
//!     "a short doc that needs whitespace cleanup, long enough to keep",
//! ]);
//! let (out, report) = Executor::new(ops).run(data).unwrap();
//! assert_eq!(out.len(), 1); // "tiny" filtered, duplicate removed
//! assert_eq!(report.initial_samples, 3);
//! ```
//!
//! ## Crate map
//!
//! | crate | paper section | contents |
//! |---|---|---|
//! | [`core`] | §3.1–3.2 | unified data representation, OP traits, registry |
//! | [`ops`] | §3, Table 1 | the 50+ built-in operators |
//! | [`text`] | substrate | tokenizers (BPE), n-gram LM, language id, text stats |
//! | [`hash`] | substrate | MinHash+LSH, SimHash, union-find, fast hashing |
//! | [`ml`] | §5.2 | HashingTF + logistic regression quality classifiers |
//! | [`config`] | §5.1 | YAML recipes, 20+ built-in recipe templates |
//! | [`exec`] | §6 | executor, context management, OP fusion & reordering |
//! | [`store`] | §4.1.1, §6 | caching/checkpointing, compression, serialization |
//! | [`analyze`] | §4.2, §5.2 | analyzer, visualizer, tracer, samplers |
//! | [`hpo`] | §4.1.2 | search spaces, sweeps, Hyperband, Fig. 3 analysis |
//! | [`eval`] | §4.3 | proxy LLM evaluation, pairwise judge, leaderboard |
//! | [`dist`] | §6, Fig. 10 | Ray/Beam-style distributed execution model |
//! | [`synth`] | substrate | seeded synthetic corpora (web, wiki, code, IFT...) |

pub use dj_analyze as analyze;
pub use dj_config as config;
pub use dj_core as core;
pub use dj_dist as dist;
pub use dj_eval as eval;
pub use dj_exec as exec;
pub use dj_hash as hash;
pub use dj_hpo as hpo;
pub use dj_io as io;
pub use dj_ml as ml;
pub use dj_ops as ops;
pub use dj_store as store;
pub use dj_synth as synth;
pub use dj_text as text;

/// The most common imports in one place.
pub mod prelude {
    pub use dj_analyze::{Analyzer, DataProbe};
    pub use dj_config::{OpSpec, Recipe};
    pub use dj_core::{Dataset, DjError, Op, OpRegistry, Result, Sample, Value};
    pub use dj_exec::{ExecOptions, Executor, RunReport};
    pub use dj_ops::builtin_registry;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let recipe = Recipe::new("smoke").then(OpSpec::new("lowercase_mapper"));
        let ops = recipe.build_ops(&builtin_registry()).unwrap();
        let (out, _) = Executor::new(ops)
            .run(Dataset::from_texts(["ABC"]))
            .unwrap();
        assert_eq!(out.get(0).unwrap().text(), "abc");
    }
}
